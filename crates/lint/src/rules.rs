//! The rule catalogue: Nova's concurrency invariants as token-level
//! checks over a scanned [`SourceFile`].
//!
//! | rule               | what fires                                            | waiver |
//! |--------------------|-------------------------------------------------------|--------|
//! | `unsafe_safety`    | `unsafe` without a covering `// SAFETY:` comment      | write the comment |
//! | `unsafe_allowlist` | `unsafe` outside the audited-file allowlist           | extend the allowlist (a PR-visible act) |
//! | `hot_lock`         | lock acquisition (`.lock()`, Condvar waits) or a lock type named inside a hot-path fn body | `// lint: allow(lock, reason)` |
//! | `ordering_relaxed` | `Ordering::{Relaxed,Acquire,Release,AcqRel}` without a covering `// ORDERING:` comment | write the comment |
//! | `ordering_seqcst`  | `Ordering::SeqCst` anywhere — probable over-synchronization | `// lint: allow(seqcst, reason)` |
//! | `no_alloc`         | allocation in a fn tagged `// lint: no_alloc`         | `// lint: allow(alloc, reason)` |
//! | `enum_wildcard`    | `_ =>` arm in a match over a protocol enum            | `// lint: allow(wildcard, reason)` |
//! | `hot_panic`        | `unwrap`/`expect`/`panic!` family in a hot-path fn    | `// lint: allow(panic, reason)` |
//!
//! Hot-path regions come from [`RuleConfig`]: a file either has a
//! named list of hot functions or is hot wholesale (the data plane
//! files, where even "control plane" sections must justify their
//! locks explicitly). Any fn anywhere can additionally opt in with
//! `// lint: hot_path`. Test code (`#[test]` / `#[cfg(test)]`) is
//! exempt from every rule except the unsafe audit.

use crate::lexer::TokenKind;
use crate::scanner::{AnnotationKind, FnItem, SourceFile};

/// How much of a file counts as hot path.
#[derive(Debug, Clone)]
pub enum Region {
    /// Every fn in the file (minus tests).
    WholeFile,
    /// Only the named fns.
    Fns(Vec<String>),
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    /// Trimmed source text of the offending line.
    pub text: String,
    pub message: String,
}

impl Finding {
    /// Stable identity for the suppression baseline: rule + file +
    /// line *text* (not line number, so unrelated edits above a
    /// baselined site do not resurrect it).
    pub fn fingerprint(&self) -> String {
        format!("{}|{}|{}", self.rule, self.file, self.text)
    }
}

/// Which files are hot, which may contain `unsafe`, which enums are
/// wire protocols. [`RuleConfig::nova`] is the workspace's real
/// policy; tests build ad-hoc configs to point rules at fixtures.
#[derive(Debug, Clone, Default)]
pub struct RuleConfig {
    /// `(path suffix, region)` — a file matches by `ends_with`.
    pub hot_regions: Vec<(String, Region)>,
    /// Path suffixes of the only files allowed to contain `unsafe`.
    pub unsafe_allowlist: Vec<String>,
    /// Enum type names whose matches must stay wildcard-free.
    pub protocol_enums: Vec<String>,
}

impl RuleConfig {
    /// Nova's checked invariants, as shipped.
    pub fn nova() -> RuleConfig {
        let fns = |names: &[&str]| Region::Fns(names.iter().map(|s| s.to_string()).collect());
        RuleConfig {
            hot_regions: vec![
                // The shared join state machine's probe path.
                (
                    "crates/exec/src/join.rs".into(),
                    fns(&["on_tuple", "on_batch", "end_batch"]),
                ),
                // The arena-backed window state: insert, probe, GC.
                (
                    "crates/runtime/src/window.rs".into(),
                    fns(&[
                        "insert_and_probe_with",
                        "push_tuple",
                        "visit_chain",
                        "slot_of",
                        "gc",
                        "recycle_chain",
                        "window_of",
                    ]),
                ),
                // The data plane and the telemetry instruments carry
                // every tuple: hot wholesale. Their genuine control
                // plane sections (channel construction, registry
                // bookkeeping, snapshot assembly) must say so with
                // `allow(lock, …)` — that asymmetry is the point.
                ("crates/exec/src/channel.rs".into(), Region::WholeFile),
                ("crates/exec/src/metrics.rs".into(), Region::WholeFile),
            ],
            unsafe_allowlist: vec![
                "crates/exec/src/affinity.rs".into(),
                "crates/exec/src/sharded.rs".into(),
            ],
            protocol_enums: vec!["JoinMsg".into(), "SinkMsg".into(), "SourceCtrl".into()],
        }
    }

    fn region_for<'a>(&'a self, rel_path: &str) -> Option<&'a Region> {
        self.hot_regions
            .iter()
            .find(|(suffix, _)| rel_path.ends_with(suffix.as_str()))
            .map(|(_, r)| r)
    }

    fn unsafe_allowed(&self, rel_path: &str) -> bool {
        self.unsafe_allowlist
            .iter()
            .any(|s| rel_path.ends_with(s.as_str()))
    }
}

/// Run every rule over one scanned file.
pub fn check_file(file: &SourceFile, cfg: &RuleConfig) -> Vec<Finding> {
    let mut out = Vec::new();
    rule_unsafe(file, cfg, &mut out);
    rule_ordering(file, &mut out);
    rule_enum_wildcard(file, cfg, &mut out);
    rule_no_alloc(file, &mut out);
    for f in hot_fns(file, cfg) {
        rule_hot_lock(file, f, &mut out);
        rule_hot_panic(file, f, &mut out);
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// The fn items the lock/panic rules scan: region-selected fns plus
/// anything tagged `// lint: hot_path`, tests excluded.
fn hot_fns<'a>(file: &'a SourceFile, cfg: &RuleConfig) -> Vec<&'a FnItem> {
    let region = cfg.region_for(&file.rel_path);
    file.fns
        .iter()
        .filter(|f| !f.in_test)
        .filter(|f| {
            f.hot_path
                || match region {
                    Some(Region::WholeFile) => true,
                    Some(Region::Fns(names)) => names.iter().any(|n| n == &f.name),
                    None => false,
                }
        })
        .collect()
}

/// Rules 1a/1b: every `unsafe` needs a `// SAFETY:` comment, and only
/// allowlisted files may contain `unsafe` at all. This is the one rule
/// that also applies to test code — an unsound test is still unsound.
fn rule_unsafe(file: &SourceFile, cfg: &RuleConfig, out: &mut Vec<Finding>) {
    for t in &file.tokens {
        if t.kind != TokenKind::Ident || t.text != "unsafe" {
            continue;
        }
        if !file.covered_by(t.line, &AnnotationKind::Safety) {
            out.push(Finding {
                rule: "unsafe_safety",
                file: file.rel_path.clone(),
                line: t.line,
                text: file.line_text(t.line).to_string(),
                message: "`unsafe` without a covering `// SAFETY:` comment".into(),
            });
        }
        if !cfg.unsafe_allowed(&file.rel_path) {
            out.push(Finding {
                rule: "unsafe_allowlist",
                file: file.rel_path.clone(),
                line: t.line,
                text: file.line_text(t.line).to_string(),
                message: "`unsafe` outside the audited-file allowlist".into(),
            });
        }
    }
}

/// Rule 3: atomic memory orderings. `Relaxed`/`Acquire`/`Release`/
/// `AcqRel` must carry an `// ORDERING:` justification; `SeqCst` is
/// flagged as probable over-synchronization. Matching the full
/// `Ordering :: Variant` path keeps `std::cmp::Ordering::Greater`
/// (and any other `Ordering` enum) from ever firing.
fn rule_ordering(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    for i in 0..toks.len().saturating_sub(2) {
        let path = toks[i].kind == TokenKind::Ident
            && toks[i].text == "Ordering"
            && toks[i + 1].text == "::"
            && toks[i + 2].kind == TokenKind::Ident;
        if !path {
            continue;
        }
        let variant = toks[i + 2].text.as_str();
        let line = toks[i + 2].line;
        if file.in_test(line) {
            continue;
        }
        match variant {
            "SeqCst" if !file.allowed(line, "seqcst") => {
                out.push(Finding {
                    rule: "ordering_seqcst",
                    file: file.rel_path.clone(),
                    line,
                    text: file.line_text(line).to_string(),
                    message: "`Ordering::SeqCst` is probably over-synchronized — \
                              downgrade, or waive with `// lint: allow(seqcst, reason)`"
                        .into(),
                });
            }
            "Relaxed" | "Acquire" | "Release" | "AcqRel"
                if !file.covered_by(line, &AnnotationKind::Ordering) =>
            {
                out.push(Finding {
                    rule: "ordering_relaxed",
                    file: file.rel_path.clone(),
                    line,
                    text: file.line_text(line).to_string(),
                    message: format!(
                        "`Ordering::{variant}` without a covering `// ORDERING:` justification"
                    ),
                });
            }
            _ => {}
        }
    }
}

/// Rule 5: no `_ =>` arm in a match over a protocol enum — adding a
/// wire-protocol variant must fail the build at every match site. A
/// match "is over a protocol enum" when the enum's name appears in the
/// scrutinee or in any arm pattern.
fn rule_enum_wildcard(file: &SourceFile, cfg: &RuleConfig, out: &mut Vec<Finding>) {
    for m in &file.matches {
        if file.in_test(m.line) {
            continue;
        }
        let mentions_protocol = m
            .head
            .iter()
            .chain(m.arms.iter().flat_map(|a| a.pattern.iter()))
            .filter(|t| t.kind == TokenKind::Ident)
            .any(|t| cfg.protocol_enums.iter().any(|e| e == &t.text));
        if !mentions_protocol {
            continue;
        }
        for arm in m.arms.iter().filter(|a| a.wildcard) {
            if file.allowed(arm.line, "wildcard") {
                continue;
            }
            out.push(Finding {
                rule: "enum_wildcard",
                file: file.rel_path.clone(),
                line: arm.line,
                text: file.line_text(arm.line).to_string(),
                message: "wildcard `_ =>` arm in a protocol-enum match — \
                          spell the variants out so new ones fail the build"
                    .into(),
            });
        }
    }
}

/// The body tokens of `f`, empty for bodyless trait-method decls.
fn body_tokens<'a>(file: &'a SourceFile, f: &FnItem) -> &'a [crate::lexer::Token] {
    let (b0, b1) = f.body_tokens;
    if b0 >= file.tokens.len() || b1 < b0 {
        return &[];
    }
    &file.tokens[b0..=b1.min(file.tokens.len() - 1)]
}

/// Rule 4: fns tagged `// lint: no_alloc` must not allocate. Checked
/// against a token denylist — `Vec::new`, `Box::new`, `String::new`/
/// `String::from`, `vec!`/`format!`, and the allocating method calls
/// `.clone()`/`.collect()`/`.to_string()`/`.to_owned()`/`.to_vec()`.
/// `Vec::push` and `with_capacity` are deliberately permitted: the
/// arena idiom is "amortize to zero", not "never grow".
fn rule_no_alloc(file: &SourceFile, out: &mut Vec<Finding>) {
    const ALLOC_METHODS: &[&str] = &["clone", "collect", "to_string", "to_owned", "to_vec"];
    for f in file.fns.iter().filter(|f| f.no_alloc && !f.in_test) {
        let toks = body_tokens(file, f);
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind != TokenKind::Ident {
                continue;
            }
            let next = toks.get(i + 1).map(|t| t.text.as_str()).unwrap_or("");
            let next2 = toks.get(i + 2).map(|t| t.text.as_str()).unwrap_or("");
            let prev = i
                .checked_sub(1)
                .map(|p| toks[p].text.as_str())
                .unwrap_or("");
            let hit = match t.text.as_str() {
                "Vec" | "Box" => next == "::" && next2 == "new",
                "String" => next == "::" && (next2 == "new" || next2 == "from"),
                "vec" | "format" => next == "!",
                m if ALLOC_METHODS.contains(&m) => prev == "." && next == "(",
                _ => false,
            };
            if hit && !file.allowed(t.line, "alloc") {
                out.push(Finding {
                    rule: "no_alloc",
                    file: file.rel_path.clone(),
                    line: t.line,
                    text: file.line_text(t.line).to_string(),
                    message: format!(
                        "allocation (`{}`) in fn `{}` tagged `// lint: no_alloc`",
                        t.text, f.name
                    ),
                });
            }
        }
    }
}

/// Rule 2: no lock acquisition in a hot-path fn. Fires on `.lock()`,
/// the Condvar wait family, and on naming a lock type (`Mutex`,
/// `RwLock`, `Condvar`) inside the body — constructing a lock on the
/// hot path is as much a smell as taking one.
fn rule_hot_lock(file: &SourceFile, f: &FnItem, out: &mut Vec<Finding>) {
    const ACQUIRE: &[&str] = &[
        "lock",
        "wait",
        "wait_timeout",
        "wait_while",
        "wait_timeout_while",
    ];
    const LOCK_TYPES: &[&str] = &["Mutex", "RwLock", "Condvar"];
    let toks = body_tokens(file, f);
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let prev = i
            .checked_sub(1)
            .map(|p| toks[p].text.as_str())
            .unwrap_or("");
        let next = toks.get(i + 1).map(|t| t.text.as_str()).unwrap_or("");
        let call = ACQUIRE.contains(&t.text.as_str()) && prev == "." && next == "(";
        let ty = LOCK_TYPES.contains(&t.text.as_str());
        if (call || ty) && !file.allowed(t.line, "lock") {
            out.push(Finding {
                rule: "hot_lock",
                file: file.rel_path.clone(),
                line: t.line,
                text: file.line_text(t.line).to_string(),
                message: format!(
                    "lock use (`{}`) in hot-path fn `{}` — move it off the hot path \
                     or mark the control-plane section `// lint: allow(lock, reason)`",
                    t.text, f.name
                ),
            });
        }
    }
}

/// Rule 6: no `unwrap`/`expect`/`panic!` family in a hot-path fn.
/// `debug_assert!` is exempt (release builds erase it); plain
/// `assert!` is left to clippy — this rule is about the unconditional
/// aborts that turn a transient condition into a dead shard.
fn rule_hot_panic(file: &SourceFile, f: &FnItem, out: &mut Vec<Finding>) {
    const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
    let toks = body_tokens(file, f);
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let prev = i
            .checked_sub(1)
            .map(|p| toks[p].text.as_str())
            .unwrap_or("");
        let next = toks.get(i + 1).map(|t| t.text.as_str()).unwrap_or("");
        let method = (t.text == "unwrap" || t.text == "expect") && prev == "." && next == "(";
        let mac = PANIC_MACROS.contains(&t.text.as_str()) && next == "!";
        if (method || mac) && !file.allowed(t.line, "panic") {
            out.push(Finding {
                rule: "hot_panic",
                file: file.rel_path.clone(),
                line: t.line,
                text: file.line_text(t.line).to_string(),
                message: format!(
                    "`{}` in hot-path fn `{}` — handle the case, \
                     or mark it `// lint: allow(panic, reason)`",
                    t.text, f.name
                ),
            });
        }
    }
}
