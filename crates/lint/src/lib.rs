//! `nova-lint` — Nova's workspace concurrency-invariant checker.
//!
//! The executor's performance story rests on invariants that `rustc`
//! cannot see: the probe loop takes no locks, the batched hot path
//! allocates nothing in steady state, every atomic ordering has a
//! written-down consistency argument, `unsafe` lives in two audited
//! files, and wire-protocol enums are always matched exhaustively.
//! This crate checks all of that offline, with zero dependencies —
//! a hand-rolled lexer ([`lexer`]), a token-stream scanner
//! ([`scanner`]), the rule catalogue ([`rules`]), and reporting plus
//! a suppression baseline ([`report`]).
//!
//! Run it from the workspace root:
//!
//! ```sh
//! cargo run -p nova-lint
//! ```
//!
//! DESIGN.md §11 documents the rule catalogue and the annotation
//! grammar (`// SAFETY:`, `// ORDERING:`, `// lint: …`).

#![forbid(unsafe_code)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod scanner;

use rules::{Finding, RuleConfig};
use scanner::SourceFile;
use std::path::{Path, PathBuf};

/// Directory names the walker never descends into: build output,
/// vendored stubs, test/bench/fixture code.
const SKIP_DIRS: &[&str] = &[
    "target", "vendor", "tests", "benches", "examples", "fixtures", ".git",
];

/// Every `.rs` file the lint covers: the facade's `src/` plus each
/// `crates/*/src/`, sorted for deterministic reports.
pub fn workspace_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut roots = vec![root.join("src")];
    let crates = root.join("crates");
    if crates.is_dir() {
        let entries =
            std::fs::read_dir(&crates).map_err(|e| format!("read_dir {crates:?}: {e}"))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read_dir {crates:?}: {e}"))?;
            let src = entry.path().join("src");
            if src.is_dir() {
                roots.push(src);
            }
        }
    }
    for r in roots {
        if r.is_dir() {
            walk(&r, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {dir:?}: {e}"))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {dir:?}: {e}"))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated regardless of platform —
/// the form rule configs and baseline fingerprints use.
pub fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Scan one file from disk and run every rule over it.
pub fn check_path(root: &Path, path: &Path, cfg: &RuleConfig) -> Result<Vec<Finding>, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
    let file = SourceFile::parse(&rel_path(root, path), &src);
    Ok(rules::check_file(&file, cfg))
}

/// Walk the workspace under `root` and collect every finding.
pub fn check_workspace(root: &Path, cfg: &RuleConfig) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    for path in workspace_files(root)? {
        findings.extend(check_path(root, &path, cfg)?);
    }
    Ok(findings)
}
