//! Token-stream structure recovery: annotations, test regions,
//! function items, and `match` expressions.
//!
//! The scanner turns a [`Lexed`](crate::lexer::Lexed) file into the
//! shapes the rules need,
//! without building a real AST:
//!
//! - **Annotations** — the lint grammar lives in ordinary comments:
//!   `// SAFETY: <why>`, `// ORDERING: <why>`,
//!   `// lint: allow(<key>, <reason>)` (several `allow(…)` clauses may
//!   share one comment), and the fn tags `// lint: no_alloc` /
//!   `// lint: hot_path`. Each annotation *covers a paragraph*: its own
//!   line plus every contiguous following non-blank line. A comment
//!   above a statement therefore covers the whole statement even when
//!   rustfmt splits it across lines, and a trailing comment covers its
//!   own line — but a blank line always ends the covered region, so an
//!   annotation can never silently justify unrelated code further down.
//! - **Test regions** — line ranges of items marked `#[test]` or
//!   `#[cfg(test)]` (attributes containing `not`, as in
//!   `#[cfg(not(test))]`, do not count). Most rules skip test code.
//! - **Functions** — name, line of the `fn` keyword, body token/line
//!   range, and which tags cover the `fn` line.
//! - **Match expressions** — scrutinee tokens plus top-level arms
//!   (pattern tokens, wildcard-ness, arm line), for the protocol-enum
//!   wildcard rule.

use crate::lexer::{lex, Comment, Token, TokenKind};

/// What a parsed annotation means.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnnotationKind {
    /// `// SAFETY: <why>` — justifies an `unsafe` site.
    Safety,
    /// `// ORDERING: <why>` — justifies an atomic memory ordering.
    Ordering,
    /// `// lint: allow(<key>, <reason>)` — waives one rule. `key` is
    /// one of `lock`, `panic`, `alloc`, `seqcst`, `wildcard`.
    Allow { key: String, has_reason: bool },
    /// `// lint: no_alloc` — tags the next `fn` as allocation-free.
    NoAlloc,
    /// `// lint: hot_path` — tags the next `fn` as a hot-path region
    /// even outside the built-in region table.
    HotPath,
}

/// One annotation with the line range it covers (inclusive, 1-based).
#[derive(Debug, Clone)]
pub struct Annotation {
    pub kind: AnnotationKind,
    pub line: u32,
    pub covers_to: u32,
}

/// One function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token index range of the body, `{` and `}` included. Empty for
    /// bodyless trait-method declarations.
    pub body_tokens: (usize, usize),
    pub no_alloc: bool,
    pub hot_path: bool,
    pub in_test: bool,
}

/// One top-level arm of a `match` expression.
#[derive(Debug, Clone)]
pub struct MatchArm {
    /// Pattern tokens (guard excluded).
    pub pattern: Vec<Token>,
    /// True when the pattern is exactly `_`.
    pub wildcard: bool,
    pub line: u32,
}

/// One `match` expression: scrutinee tokens plus its top-level arms.
#[derive(Debug, Clone)]
pub struct MatchExpr {
    pub head: Vec<Token>,
    pub arms: Vec<MatchArm>,
    pub line: u32,
}

/// A fully scanned source file, ready for the rules.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// Raw source lines, for snippets and blank-line detection.
    pub lines: Vec<String>,
    pub tokens: Vec<Token>,
    pub annotations: Vec<Annotation>,
    pub fns: Vec<FnItem>,
    pub matches: Vec<MatchExpr>,
    /// Inclusive line ranges of `#[test]` / `#[cfg(test)]` items.
    pub test_regions: Vec<(u32, u32)>,
}

impl SourceFile {
    /// Lex and scan one file.
    pub fn parse(rel_path: &str, src: &str) -> SourceFile {
        let lexed = lex(src);
        let lines: Vec<String> = src.lines().map(|l| l.to_string()).collect();
        let annotations = parse_annotations(&lexed.comments, &lines);
        let test_regions = find_test_regions(&lexed.tokens);
        let fns = find_fns(&lexed.tokens, &annotations, &test_regions);
        let matches = find_matches(&lexed.tokens);
        SourceFile {
            rel_path: rel_path.to_string(),
            lines,
            tokens: lexed.tokens,
            annotations,
            fns,
            matches,
            test_regions,
        }
    }

    /// Is `line` covered by an annotation of the given kind?
    pub fn covered_by(&self, line: u32, want: &AnnotationKind) -> bool {
        self.annotations
            .iter()
            .any(|a| a.kind == *want && a.line <= line && line <= a.covers_to)
    }

    /// Is `line` covered by `// lint: allow(key, …)` *with* a reason?
    pub fn allowed(&self, line: u32, key: &str) -> bool {
        self.annotations.iter().any(|a| {
            matches!(&a.kind, AnnotationKind::Allow { key: k, has_reason: true } if k == key)
                && a.line <= line
                && line <= a.covers_to
        })
    }

    /// Is `line` inside a `#[test]` / `#[cfg(test)]` item?
    pub fn in_test(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    /// The trimmed source text of `line` (1-based), for reports and
    /// baseline fingerprints.
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim())
            .unwrap_or("")
    }
}

/// Strip doc-comment markers: `/// SAFETY:` and `//! …` carry the
/// same grammar as plain `//` comments.
fn comment_body(text: &str) -> &str {
    text.trim_start_matches(['/', '!']).trim()
}

fn starts_annotation(body: &str) -> bool {
    body.starts_with("SAFETY:") || body.starts_with("ORDERING:") || body.starts_with("lint:")
}

/// Parse every comment into zero or more annotations and compute
/// paragraph coverage from the raw source lines.
///
/// An annotation may run on across several comment lines: comments on
/// directly following lines that do not start an annotation of their
/// own are folded into the text, so an `allow(key, long reason…)`
/// clause can wrap.
fn parse_annotations(comments: &[Comment], lines: &[String]) -> Vec<Annotation> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < comments.len() {
        let c = &comments[i];
        let body = comment_body(&c.text);
        if !starts_annotation(body) {
            i += 1;
            continue;
        }
        // Fold continuation comment lines into one logical text.
        let mut text = body.to_string();
        let mut prev_line = c.line;
        let mut j = i + 1;
        while j < comments.len() {
            let n = &comments[j];
            let nb = comment_body(&n.text);
            if n.line != prev_line + 1 || starts_annotation(nb) {
                break;
            }
            text.push(' ');
            text.push_str(nb);
            prev_line = n.line;
            j += 1;
        }
        let covers_to = paragraph_end(lines, c.line);
        if let Some(rest) = text.strip_prefix("SAFETY:") {
            if !rest.trim().is_empty() {
                out.push(Annotation {
                    kind: AnnotationKind::Safety,
                    line: c.line,
                    covers_to,
                });
            }
        } else if let Some(rest) = text.strip_prefix("ORDERING:") {
            if !rest.trim().is_empty() {
                out.push(Annotation {
                    kind: AnnotationKind::Ordering,
                    line: c.line,
                    covers_to,
                });
            }
        } else if let Some(rest) = text.strip_prefix("lint:") {
            for kind in parse_lint_directives(rest) {
                out.push(Annotation {
                    kind,
                    line: c.line,
                    covers_to,
                });
            }
        }
        i = j;
    }
    out
}

/// Last line of the paragraph starting at `line`: extend downward
/// while lines stay non-blank.
fn paragraph_end(lines: &[String], line: u32) -> u32 {
    let mut end = line;
    while (end as usize) < lines.len() && !lines[end as usize].trim().is_empty() {
        end += 1;
    }
    end
}

/// Parse the payload of a `// lint:` comment: any mix of `no_alloc`,
/// `hot_path`, and `allow(key, reason)` clauses. Tags must come
/// before the first `allow(…)` — reason prose is free-form and must
/// not be able to smuggle a tag in.
fn parse_lint_directives(rest: &str) -> Vec<AnnotationKind> {
    let mut out = Vec::new();
    let mut s = rest;
    while let Some(pos) = s.find("allow(") {
        let after = &s[pos + "allow(".len()..];
        // A reason may itself contain `(…)`: the clause ends at the
        // `)` that balances the opening one.
        let mut depth = 1usize;
        let mut close = None;
        for (k, ch) in after.char_indices() {
            match ch {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(k);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(close) = close else { break };
        let inner = &after[..close];
        let (key, reason) = match inner.split_once(',') {
            Some((k, r)) => (k.trim(), r.trim()),
            None => (inner.trim(), ""),
        };
        if !key.is_empty() {
            out.push(AnnotationKind::Allow {
                key: key.to_string(),
                has_reason: !reason.is_empty(),
            });
        }
        s = &after[close + 1..];
    }
    let tag_scope = rest.split("allow(").next().unwrap_or(rest);
    for word in tag_scope.split([' ', ',']) {
        match word.trim() {
            "no_alloc" => out.push(AnnotationKind::NoAlloc),
            "hot_path" => out.push(AnnotationKind::HotPath),
            _ => {}
        }
    }
    out
}

/// Index of the token matching the opening delimiter at `open`,
/// balancing `(`/`)`, `[`/`]`, `{`/`}` together. Returns the index of
/// the closing token (or the last token on unbalanced input).
pub fn matching_close(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0isize;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].kind == TokenKind::Punct {
            match tokens[i].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    tokens.len().saturating_sub(1)
}

/// Line ranges of items whose attributes mark them as test code.
fn find_test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let is_attr_start =
            tokens[i].text == "#" && i + 1 < tokens.len() && tokens[i + 1].text == "[";
        if !is_attr_start {
            i += 1;
            continue;
        }
        let close = matching_close(tokens, i + 1);
        let attr = &tokens[i + 1..close];
        let has = |name: &str| {
            attr.iter()
                .any(|t| t.kind == TokenKind::Ident && t.text == name)
        };
        // `#[test]`, `#[cfg(test)]` mark tests; `#[cfg(not(test))]` is
        // production code.
        if has("test") && !has("not") {
            // The marked item's body is the next brace group.
            let mut j = close + 1;
            while j < tokens.len() && tokens[j].text != "{" {
                j += 1;
            }
            if j < tokens.len() {
                let end = matching_close(tokens, j);
                out.push((tokens[i].line, tokens[end].line));
                i = end + 1;
                continue;
            }
        }
        i = close + 1;
    }
    out
}

/// Find every `fn` item: name, body range, tags, test-ness.
fn find_fns(
    tokens: &[Token],
    annotations: &[Annotation],
    test_regions: &[(u32, u32)],
) -> Vec<FnItem> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].kind != TokenKind::Ident || tokens[i].text != "fn" {
            continue;
        }
        // `fn` in a function-pointer type (`fn(u32) -> u32`) has no
        // name ident after it.
        let Some(name_tok) = tokens.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokenKind::Ident {
            continue;
        }
        // Signature runs to the first `{` (body) or top-level `;`
        // (trait method declaration), skipping nested groups.
        let mut j = i + 2;
        let mut depth = 0isize;
        let mut body = None;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        body = Some((j, matching_close(tokens, j)));
                        break;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        let line = tokens[i].line;
        let tagged = |want: &AnnotationKind| {
            annotations
                .iter()
                .any(|a| a.kind == *want && a.line <= line && line <= a.covers_to)
        };
        out.push(FnItem {
            name: name_tok.text.clone(),
            line,
            body_tokens: body.unwrap_or((j, j.saturating_sub(1))),
            no_alloc: tagged(&AnnotationKind::NoAlloc),
            hot_path: tagged(&AnnotationKind::HotPath),
            in_test: test_regions.iter().any(|&(a, b)| a <= line && line <= b),
        });
    }
    out
}

/// Find every `match` expression and split its top-level arms.
fn find_matches(tokens: &[Token]) -> Vec<MatchExpr> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].kind != TokenKind::Ident || tokens[i].text != "match" {
            continue;
        }
        // Head: scrutinee tokens up to the body's `{` at group depth 0.
        // (Struct literals are not allowed in a bare match head, so the
        // first depth-0 `{` is the body.)
        let mut j = i + 1;
        let mut depth = 0isize;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => break,
                    // A depth-0 `;` or `}` means this `match` was not
                    // an expression head after all — bail out.
                    ";" | "}" if depth == 0 => {
                        j = tokens.len();
                        break;
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        if j >= tokens.len() {
            continue;
        }
        let head: Vec<Token> = tokens[i + 1..j].to_vec();
        let body_open = j;
        let body_close = matching_close(tokens, body_open);
        let arms = split_arms(&tokens[body_open + 1..body_close]);
        out.push(MatchExpr {
            head,
            arms,
            line: tokens[i].line,
        });
    }
    out
}

/// Split the token slice between a match body's braces into arms.
fn split_arms(body: &[Token]) -> Vec<MatchArm> {
    let mut arms = Vec::new();
    let mut i = 0usize;
    while i < body.len() {
        // Pattern: tokens until `=>` at depth 0. A guard (`if …`)
        // after the pattern is excluded from the pattern tokens.
        let start = i;
        let mut depth = 0isize;
        let mut pat_end = None;
        let mut guard_at = None;
        let mut j = i;
        while j < body.len() {
            let t = &body[j];
            match (t.kind, t.text.as_str()) {
                (TokenKind::Punct, "(") | (TokenKind::Punct, "[") | (TokenKind::Punct, "{") => {
                    depth += 1
                }
                (TokenKind::Punct, ")") | (TokenKind::Punct, "]") | (TokenKind::Punct, "}") => {
                    depth -= 1
                }
                (TokenKind::Punct, "=>") if depth == 0 => {
                    pat_end = Some(j);
                    break;
                }
                (TokenKind::Ident, "if") if depth == 0 && guard_at.is_none() => {
                    guard_at = Some(j);
                }
                _ => {}
            }
            j += 1;
        }
        let Some(arrow) = pat_end else { break };
        let pattern: Vec<Token> = body[start..guard_at.unwrap_or(arrow)].to_vec();
        let wildcard = pattern.len() == 1 && pattern[0].text == "_";
        let line = body.get(start).map(|t| t.line).unwrap_or(0);
        arms.push(MatchArm {
            pattern,
            wildcard,
            line,
        });
        // Arm body: a brace group, or tokens to the next depth-0 `,`.
        let mut k = arrow + 1;
        if k < body.len() && body[k].text == "{" {
            k = matching_close(body, k) + 1;
            // Optional trailing comma.
            if k < body.len() && body[k].text == "," {
                k += 1;
            }
        } else {
            let mut d = 0isize;
            while k < body.len() {
                let t = &body[k];
                if t.kind == TokenKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" | "{" => d += 1,
                        ")" | "]" | "}" => d -= 1,
                        "," if d == 0 => {
                            k += 1;
                            break;
                        }
                        _ => {}
                    }
                }
                k += 1;
            }
        }
        i = k;
    }
    arms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotations_cover_their_paragraph() {
        let src = "\
// ORDERING: monotonic counter, readers tolerate staleness.
let a = x.load();
let b = y.load();

let c = z.load();
";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.covered_by(1, &AnnotationKind::Ordering));
        assert!(f.covered_by(2, &AnnotationKind::Ordering));
        assert!(f.covered_by(3, &AnnotationKind::Ordering));
        // The blank line ends the paragraph.
        assert!(!f.covered_by(5, &AnnotationKind::Ordering));
    }

    #[test]
    fn allow_clauses_need_a_reason_and_can_share_a_comment() {
        let src = "\
// lint: allow(lock, control plane) allow(panic, poisoned is fatal)
state.lock().expect(\"poisoned\");

// lint: allow(lock)
other.lock();
";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.allowed(2, "lock"));
        assert!(f.allowed(2, "panic"));
        // Bare allow(lock) without a reason does not count.
        assert!(!f.allowed(5, "lock"));
    }

    #[test]
    fn allow_reasons_may_wrap_lines_and_contain_parens() {
        let src = "\
// lint: allow(lock, waker registration must be atomic with the
// buffer check (DESIGN.md §5), so the state lives under one guard)
let g = state.lock();
";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.allowed(3, "lock"));
    }

    #[test]
    fn reason_prose_cannot_smuggle_a_tag() {
        let src = "\
// lint: allow(panic, this fn is not tagged no_alloc on purpose)
fn f() { x.unwrap(); }
";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.allowed(2, "panic"));
        let func = f.fns.iter().find(|x| x.name == "f").expect("fn");
        assert!(!func.no_alloc);
    }

    #[test]
    fn no_alloc_tag_reaches_past_attributes() {
        let src = "\
// lint: no_alloc
#[inline]
pub fn hot(&mut self) -> usize {
    self.n
}
";
        let f = SourceFile::parse("t.rs", src);
        let hot = f.fns.iter().find(|f| f.name == "hot").expect("fn found");
        assert!(hot.no_alloc);
        assert!(!hot.hot_path);
    }

    #[test]
    fn cfg_test_marks_regions_but_cfg_not_test_does_not() {
        let src = "\
fn prod() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {}
}

#[cfg(not(test))]
fn also_prod() {}
";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.in_test(1));
        assert!(f.in_test(5));
        assert!(!f.in_test(10));
        let also = f.fns.iter().find(|x| x.name == "also_prod").expect("fn");
        assert!(!also.in_test);
    }

    #[test]
    fn match_arms_split_with_guards_and_nested_groups() {
        let src = "\
match msg {
    Msg::A(x) if x > 0 => f(x),
    Msg::B { y, .. } => { g(y); }
    _ => {}
}
";
        let f = SourceFile::parse("t.rs", src);
        assert_eq!(f.matches.len(), 1);
        let m = &f.matches[0];
        assert_eq!(m.arms.len(), 3);
        assert!(!m.arms[0].wildcard);
        assert!(!m.arms[1].wildcard);
        assert!(m.arms[2].wildcard);
        assert_eq!(m.arms[2].line, 4);
        // The guard is excluded from the pattern tokens.
        assert!(m.arms[0].pattern.iter().all(|t| t.text != "if"));
    }

    #[test]
    fn nested_err_patterns_are_not_wildcards() {
        let src = "\
match r {
    Ok(Ctrl::Go) | Err(_) => run(),
    Ok(Ctrl::Stop) => stop(),
}
";
        let f = SourceFile::parse("t.rs", src);
        let m = &f.matches[0];
        assert_eq!(m.arms.len(), 2);
        assert!(m.arms.iter().all(|a| !a.wildcard));
    }

    #[test]
    fn nested_matches_are_each_found() {
        let src = "\
match a {
    X::P(inner) => match inner {
        Y::Q => 1,
        _ => 2,
    },
    X::R => 3,
}
";
        let f = SourceFile::parse("t.rs", src);
        assert_eq!(f.matches.len(), 2);
        let outer = &f.matches[0];
        assert_eq!(outer.arms.len(), 2);
        assert!(outer.arms.iter().all(|a| !a.wildcard));
        let inner = &f.matches[1];
        assert!(inner.arms.iter().any(|a| a.wildcard));
    }
}
