//! The `nova-lint` CLI.
//!
//! ```sh
//! cargo run -p nova-lint                      # check the workspace
//! cargo run -p nova-lint -- --json out.json   # also write the CI report
//! cargo run -p nova-lint -- --write-baseline  # accept current findings
//! ```
//!
//! Exits 0 when every finding is baselined (or there are none),
//! 1 on new findings, 2 on usage or I/O errors.

#![forbid(unsafe_code)]

use nova_lint::report::{partition, render_human, render_json, Baseline};
use nova_lint::rules::RuleConfig;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    baseline: Option<PathBuf>,
    json: Option<PathBuf>,
    write_baseline: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: nova-lint [--root PATH] [--baseline PATH] [--json PATH] [--write-baseline]\n\
         \n\
         --root PATH        workspace root (default: this crate's ../..)\n\
         --baseline PATH    suppression baseline (default: <root>/lint-baseline.json)\n\
         --json PATH        write the machine-readable report here\n\
         --write-baseline   rewrite the baseline to accept all current findings"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    // Default root: the workspace this binary was built from, so
    // `cargo run -p nova-lint` works from any cwd.
    let default_root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut args = Args {
        root: default_root,
        baseline: None,
        json: None,
        write_baseline: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => args.root = it.next().map(PathBuf::from).unwrap_or_else(|| usage()),
            "--baseline" => {
                args.baseline = Some(it.next().map(PathBuf::from).unwrap_or_else(|| usage()))
            }
            "--json" => args.json = Some(it.next().map(PathBuf::from).unwrap_or_else(|| usage())),
            "--write-baseline" => args.write_baseline = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("nova-lint: unknown argument `{other}`");
                usage();
            }
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let root = match args.root.canonicalize() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("nova-lint: bad --root {:?}: {e}", args.root);
            return ExitCode::from(2);
        }
    };
    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| root.join("lint-baseline.json"));

    let findings = match nova_lint::check_workspace(&root, &RuleConfig::nova()) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("nova-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.write_baseline {
        let mut b = Baseline::default();
        for f in &findings {
            b.fingerprints.insert(f.fingerprint());
        }
        if let Err(e) = std::fs::write(&baseline_path, b.to_json()) {
            eprintln!("nova-lint: write {baseline_path:?}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "nova-lint: baseline rewritten with {} fingerprint(s) at {}",
            findings.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(src) => Baseline::parse(&src),
        Err(_) => Baseline::default(), // no baseline file → nothing suppressed
    };
    let (new, baselined) = partition(&findings, &baseline);

    print!("{}", render_human(&new, baselined.len()));
    if let Some(json_path) = &args.json {
        if let Err(e) = std::fs::write(json_path, render_json(&new, baselined.len())) {
            eprintln!("nova-lint: write {json_path:?}: {e}");
            return ExitCode::from(2);
        }
    }

    if new.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
