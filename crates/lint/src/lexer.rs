//! A minimal hand-rolled Rust lexer.
//!
//! `nova-lint` must build offline with zero dependencies, so it cannot
//! use `syn`. Fortunately the invariants it checks are all visible at
//! the token level: `unsafe` keywords, `Ordering::Relaxed` paths,
//! `.lock()` method calls, `_ =>` match arms. This lexer produces
//! exactly what the rules need and nothing more:
//!
//! - **Tokens** with 1-based line numbers: identifiers (keywords
//!   included — `unsafe` is just an ident here), numbers, string /
//!   char literals, lifetimes, and punctuation (`::`, `=>`, `->` are
//!   single tokens; everything else is one character).
//! - **Comments** as separate trivia, also with line numbers — the
//!   annotation grammar (`// SAFETY:`, `// ORDERING:`, `// lint: …`)
//!   lives in comments, so they must never be mistaken for code and
//!   code inside comments must never fire a rule.
//!
//! It understands the parts of Rust's lexical grammar that would
//! otherwise cause false positives: nested block comments, raw strings
//! (`r#"…"#`), byte strings, and the `'a` lifetime vs `'x'` char
//! literal ambiguity. It does *not* interpret the token stream — that
//! is `scanner.rs`'s job.

/// What a [`Token`] is. Keywords are [`TokenKind::Ident`]s: the rules
/// match on text, and treating `unsafe`/`match`/`fn` as plain idents
/// keeps the lexer free of a keyword table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword: `unsafe`, `Ordering`, `foo_bar`, `_`.
    Ident,
    /// Numeric literal (integer or float, suffix included).
    Num,
    /// String literal of any flavor: `"…"`, `r#"…"#`, `b"…"`.
    Str,
    /// Char or byte-char literal: `'x'`, `'\n'`, `b'\0'`.
    Char,
    /// Lifetime: `'a`, `'static`, `'_`.
    Lifetime,
    /// Punctuation. `::`, `=>` and `->` are one token; all other
    /// punctuation is a single character.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
}

/// One comment, kept out of the token stream. `text` is the body:
/// everything after `//` for line comments (doc-comment markers `/`
/// and `!` are left in and stripped by the annotation parser), the
/// inner text for block comments. `line` is where the comment starts.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
}

/// A lexed source file: code tokens plus comment trivia.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into tokens and comments. Never fails: unterminated
/// constructs simply run to end of file — the linter's job is to scan
/// code `rustc` already accepted, so error recovery would be dead
/// weight.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Count newlines in chars[from..to] — multi-line tokens (block
    // comments, raw strings) advance the line counter by their span.
    let newlines = |from: usize, to: usize| -> u32 {
        chars[from..to].iter().filter(|&&c| c == '\n').count() as u32
    };

    while i < chars.len() {
        let c = chars[i];

        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }

        // Comments.
        if c == '/' && i + 1 < chars.len() {
            match chars[i + 1] {
                '/' => {
                    let start = i + 2;
                    let mut j = start;
                    while j < chars.len() && chars[j] != '\n' {
                        j += 1;
                    }
                    out.comments.push(Comment {
                        text: chars[start..j].iter().collect(),
                        line,
                    });
                    i = j;
                    continue;
                }
                '*' => {
                    // Nested block comment: `/* a /* b */ c */`.
                    let start_line = line;
                    let start = i + 2;
                    let mut depth = 1usize;
                    let mut j = start;
                    while j < chars.len() && depth > 0 {
                        if chars[j] == '/' && j + 1 < chars.len() && chars[j + 1] == '*' {
                            depth += 1;
                            j += 2;
                        } else if chars[j] == '*' && j + 1 < chars.len() && chars[j + 1] == '/' {
                            depth -= 1;
                            j += 2;
                        } else {
                            j += 1;
                        }
                    }
                    let end = j.saturating_sub(2).max(start);
                    out.comments.push(Comment {
                        text: chars[start..end].iter().collect(),
                        line: start_line,
                    });
                    line += newlines(i, j);
                    i = j;
                    continue;
                }
                _ => {}
            }
        }

        // Raw strings and byte strings: r"…", r#"…"#, b"…", br#"…"#.
        if c == 'r' || c == 'b' {
            let mut j = i + 1;
            if c == 'b' && j < chars.len() && chars[j] == 'r' {
                j += 1;
            }
            let raw = c == 'r' || (j > i + 1);
            if raw {
                let hashes_from = j;
                while j < chars.len() && chars[j] == '#' {
                    j += 1;
                }
                let hashes = j - hashes_from;
                if j < chars.len() && chars[j] == '"' {
                    // Confirmed raw string: scan to `"` followed by
                    // `hashes` hash marks.
                    let mut k = j + 1;
                    'scan: while k < chars.len() {
                        if chars[k] == '"' {
                            let mut h = 0usize;
                            while h < hashes && k + 1 + h < chars.len() && chars[k + 1 + h] == '#' {
                                h += 1;
                            }
                            if h == hashes {
                                k += 1 + hashes;
                                break 'scan;
                            }
                        }
                        k += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Str,
                        text: chars[i..k.min(chars.len())].iter().collect(),
                        line,
                    });
                    line += newlines(i, k.min(chars.len()));
                    i = k;
                    continue;
                }
                // Not a raw string after all (`r#match` raw idents are
                // not used in this workspace): fall through to ident.
            } else if c == 'b'
                && i + 1 < chars.len()
                && (chars[i + 1] == '"' || chars[i + 1] == '\'')
            {
                // b"…" / b'…': lex as the underlying literal with the
                // prefix glued on.
                let quote = chars[i + 1];
                let (tok, next) = lex_quoted(&chars, i + 1, quote);
                out.tokens.push(Token {
                    kind: if quote == '"' {
                        TokenKind::Str
                    } else {
                        TokenKind::Char
                    },
                    text: format!("b{tok}"),
                    line,
                });
                line += newlines(i, next);
                i = next;
                continue;
            }
        }

        if c == '"' {
            let (tok, next) = lex_quoted(&chars, i, '"');
            out.tokens.push(Token {
                kind: TokenKind::Str,
                text: tok,
                line,
            });
            line += newlines(i, next);
            i = next;
            continue;
        }

        if c == '\'' {
            // Lifetime or char literal. `'a`, `'static`, `'_` have an
            // ident run NOT followed by a closing quote; `'x'` does.
            let mut j = i + 1;
            let is_lifetime = if j < chars.len() && is_ident_start(chars[j]) {
                let mut k = j + 1;
                while k < chars.len() && is_ident_char(chars[k]) {
                    k += 1;
                }
                if k < chars.len() && chars[k] == '\'' {
                    false // 'x' — a one-char literal ('ab' is not Rust)
                } else {
                    j = k;
                    true
                }
            } else {
                false
            };
            if is_lifetime {
                out.tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text: chars[i..j].iter().collect(),
                    line,
                });
                i = j;
                continue;
            }
            let (tok, next) = lex_quoted(&chars, i, '\'');
            out.tokens.push(Token {
                kind: TokenKind::Char,
                text: tok,
                line,
            });
            i = next;
            continue;
        }

        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < chars.len() && is_ident_char(chars[j]) {
                j += 1;
            }
            // One fractional part, but never eat a `..` range operator.
            if j + 1 < chars.len() && chars[j] == '.' && chars[j + 1].is_ascii_digit() {
                j += 1;
                while j < chars.len() && is_ident_char(chars[j]) {
                    j += 1;
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Num,
                text: chars[i..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }

        if is_ident_start(c) {
            let mut j = i + 1;
            while j < chars.len() && is_ident_char(chars[j]) {
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text: chars[i..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }

        // Punctuation: keep `::`, `=>`, `->` whole — the scanner keys
        // on them — and everything else single-char.
        let two: Option<&str> = if i + 1 < chars.len() {
            match (c, chars[i + 1]) {
                (':', ':') => Some("::"),
                ('=', '>') => Some("=>"),
                ('-', '>') => Some("->"),
                _ => None,
            }
        } else {
            None
        };
        if let Some(t) = two {
            out.tokens.push(Token {
                kind: TokenKind::Punct,
                text: t.to_string(),
                line,
            });
            i += 2;
        } else {
            out.tokens.push(Token {
                kind: TokenKind::Punct,
                text: c.to_string(),
                line,
            });
            i += 1;
        }
    }

    out
}

/// Lex a `"…"` or `'…'` literal starting at `start` (which holds the
/// opening quote). Handles `\\` and `\<quote>` escapes. Returns the
/// literal text (quotes included) and the index just past it.
fn lex_quoted(chars: &[char], start: usize, quote: char) -> (String, usize) {
    let mut j = start + 1;
    while j < chars.len() {
        if chars[j] == '\\' {
            j += 2;
            continue;
        }
        if chars[j] == quote {
            j += 1;
            break;
        }
        j += 1;
    }
    let j = j.min(chars.len());
    (chars[start..j].iter().collect(), j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(l: &Lexed) -> Vec<&str> {
        l.tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect()
    }

    #[test]
    fn comments_are_trivia_not_tokens() {
        // The word "unsafe" in prose must never look like the keyword.
        let l = lex("// this is never unsafe\nfn f() {}\n/* unsafe\n   unsafe */ let x = 1;");
        assert!(idents(&l).iter().all(|t| *t != "unsafe"));
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[1].line, 3);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let l = lex("/* a /* b */ c */ fn f() {}");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(idents(&l), vec!["fn", "f"]);
    }

    #[test]
    fn raw_strings_swallow_their_contents() {
        let l = lex(r####"let s = r#"unsafe { Mutex } "quoted" "#; let t = 2;"####);
        assert!(idents(&l).iter().all(|t| *t != "unsafe" && *t != "Mutex"));
        let strs: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "'x'");
    }

    #[test]
    fn escaped_quote_char_literal() {
        let l = lex(r"let c = '\''; let d = '\\'; let s = 'a';");
        let chars: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .collect();
        assert_eq!(chars.len(), 3);
    }

    #[test]
    fn multichar_puncts_stay_whole() {
        let l = lex("Ordering::Relaxed => x -> y");
        let puncts: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(puncts, vec!["::", "=>", "->"]);
    }

    #[test]
    fn line_numbers_survive_multiline_tokens() {
        let src = "/* one\ntwo */\nfn f() {\n    g();\n}\n";
        let l = lex(src);
        let f = l.tokens.iter().find(|t| t.text == "fn").expect("fn token");
        assert_eq!(f.line, 3);
        let g = l.tokens.iter().find(|t| t.text == "g").expect("g token");
        assert_eq!(g.line, 4);
    }

    #[test]
    fn numbers_do_not_eat_range_operators() {
        let l = lex("for i in 0..10 { let f = 1.5; }");
        let nums: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5"]);
    }
}
