//! Reporting and the suppression baseline.
//!
//! The JSON here is hand-rolled: the workspace's `serde` is an offline
//! no-op stub (see `vendor/`), so `nova-lint` writes and parses its
//! own — the report is a flat object, the baseline a string array,
//! and both stay trivially greppable.

use crate::rules::Finding;
use std::collections::BTreeSet;

/// A set of finding fingerprints accepted as pre-existing debt. New
/// findings are anything not in the set; only they fail the run.
#[derive(Debug, Default)]
pub struct Baseline {
    pub fingerprints: BTreeSet<String>,
}

impl Baseline {
    /// Parse a baseline file. The format is JSON of the shape
    /// `{"fingerprints": ["rule|path|line text", …]}`; parsing just
    /// extracts every string literal, which is exactly the
    /// fingerprint list and survives formatting churn.
    pub fn parse(src: &str) -> Baseline {
        Baseline {
            fingerprints: json_strings(src)
                .into_iter()
                .filter(|s| s != "fingerprints")
                .collect(),
        }
    }

    /// Serialize back to the checked-in format, sorted for stable
    /// diffs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"fingerprints\": [\n");
        let n = self.fingerprints.len();
        for (i, fp) in self.fingerprints.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&json_escape(fp));
            if i + 1 < n {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    pub fn contains(&self, f: &Finding) -> bool {
        self.fingerprints.contains(&f.fingerprint())
    }
}

/// Split findings into (new, baselined).
pub fn partition<'a>(
    findings: &'a [Finding],
    baseline: &Baseline,
) -> (Vec<&'a Finding>, Vec<&'a Finding>) {
    findings.iter().partition(|f| !baseline.contains(f))
}

/// The human-readable report: one block per finding, rustc-style
/// `path:line` anchors so terminals link them.
pub fn render_human(new: &[&Finding], baselined: usize) -> String {
    let mut out = String::new();
    for f in new {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n    {}\n",
            f.file, f.line, f.rule, f.message, f.text
        ));
    }
    if new.is_empty() {
        out.push_str("nova-lint: clean");
    } else {
        out.push_str(&format!("nova-lint: {} new finding(s)", new.len()));
    }
    if baselined > 0 {
        out.push_str(&format!(" ({baselined} baselined)"));
    }
    out.push('\n');
    out
}

/// The machine-readable report uploaded by CI.
pub fn render_json(new: &[&Finding], baselined: usize) -> String {
    let mut out = String::from("{\n  \"findings\": [\n");
    let n = new.len();
    for (i, f) in new.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"text\": {}, \"message\": {}}}",
            json_escape(f.rule),
            json_escape(&f.file),
            f.line,
            json_escape(&f.text),
            json_escape(&f.message),
        ));
        if i + 1 < n {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "  ],\n  \"total\": {},\n  \"baselined\": {}\n}}\n",
        n, baselined
    ));
    out
}

/// Escape a string as a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Every string literal in a JSON document, unescaped. Enough of a
/// parser for the baseline format (and forgiving of trailing commas).
fn json_strings(src: &str) -> Vec<String> {
    let mut out = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        if chars[i] != '"' {
            i += 1;
            continue;
        }
        let mut s = String::new();
        i += 1;
        while i < chars.len() && chars[i] != '"' {
            if chars[i] == '\\' && i + 1 < chars.len() {
                let esc = chars[i + 1];
                s.push(match esc {
                    'n' => '\n',
                    'r' => '\r',
                    't' => '\t',
                    'u' => {
                        // \uXXXX — decode or fall back to '?'.
                        let hex: String = chars[i + 2..(i + 6).min(chars.len())].iter().collect();
                        i += 4;
                        u32::from_str_radix(&hex, 16)
                            .ok()
                            .and_then(char::from_u32)
                            .unwrap_or('?')
                    }
                    c => c,
                });
                i += 2;
            } else {
                s.push(chars[i]);
                i += 1;
            }
        }
        i += 1;
        out.push(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, text: &str) -> Finding {
        Finding {
            rule,
            file: "crates/x/src/a.rs".into(),
            line: 7,
            text: text.into(),
            message: "msg".into(),
        }
    }

    #[test]
    fn baseline_roundtrips_and_suppresses() {
        let f1 = finding("hot_lock", "state.lock()");
        let f2 = finding("hot_panic", "x.unwrap()");
        let mut b = Baseline::default();
        b.fingerprints.insert(f1.fingerprint());
        let parsed = Baseline::parse(&b.to_json());
        assert!(parsed.contains(&f1));
        assert!(!parsed.contains(&f2));
        let all = vec![f1, f2];
        let (new, old) = partition(&all, &parsed);
        assert_eq!(new.len(), 1);
        assert_eq!(old.len(), 1);
        assert_eq!(new[0].rule, "hot_panic");
    }

    #[test]
    fn fingerprints_ignore_line_numbers() {
        let mut a = finding("no_alloc", "let v = something();");
        let b_f = finding("no_alloc", "let v = something();");
        a.line = 100;
        assert_eq!(a.fingerprint(), b_f.fingerprint());
    }

    #[test]
    fn json_report_escapes_quotes() {
        let f = finding("hot_panic", r#"x.expect("channel poisoned")"#);
        let new = vec![&f];
        let json = render_json(&new, 0);
        assert!(json.contains(r#"\"channel poisoned\""#));
        assert!(json.contains("\"total\": 1"));
    }
}
