// Known-bad: lock acquisition inside a hot-path fn, with no
// `// lint: allow(lock, …)`. Must fire `hot_lock`.

use std::sync::Mutex;

pub struct Shard {
    state: Mutex<u64>,
}

impl Shard {
    pub fn on_batch(&self, n: u64) -> u64 {
        let mut g = self.state.lock().unwrap();
        *g += n;
        *g
    }
}
