// Known-bad: a Relaxed atomic access with no `// ORDERING:`
// justification. Must fire `ordering_relaxed`.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

// Regression guard: `std::cmp::Ordering` variants must never fire.
pub fn compare(a: u64, b: u64) -> std::cmp::Ordering {
    a.cmp(&b)
}
