// Known-good: every construct the rules police, each carrying the
// annotation that justifies it. Must produce zero findings even with
// this file treated as a whole-file hot region on the unsafe
// allowlist.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

pub enum JoinMsg {
    Batch(u32),
    Eof,
    Barrier(u64),
}

pub fn read_first(bytes: &[u8]) -> u8 {
    // SAFETY: caller guarantees `bytes` is non-empty; the pointer
    // comes from a live slice and is read once, in bounds.
    unsafe { *bytes.as_ptr() }
}

pub struct Shard {
    state: Mutex<u64>,
    count: AtomicU64,
    done: AtomicBool,
}

impl Shard {
    pub fn on_batch(&self, n: u64) -> u64 {
        // lint: allow(lock, control-plane registration, not the data
        // path) allow(panic, poisoned state is unrecoverable here)
        let mut g = self.state.lock().expect("poisoned");
        *g += n;
        *g
    }

    pub fn bump(&self) {
        // ORDERING: pure tally, read only by samplers.
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    pub fn finish(&self) {
        // lint: allow(seqcst, total order genuinely required across
        // this flag and the external epoch log)
        self.done.store(true, Ordering::SeqCst);
    }

    // lint: no_alloc
    pub fn probe(&self, slots: &mut Vec<u64>, n: u64) -> usize {
        slots.push(n);
        slots.len()
    }
}

pub fn handle(msg: JoinMsg) -> u32 {
    match msg {
        JoinMsg::Batch(n) => n,
        JoinMsg::Eof => 0,
        JoinMsg::Barrier(e) => e as u32,
    }
}
