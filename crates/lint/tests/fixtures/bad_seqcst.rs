// Known-bad: SeqCst where nothing needs a single total order. Must
// fire `ordering_seqcst`.

use std::sync::atomic::{AtomicBool, Ordering};

pub fn set(flag: &AtomicBool) {
    flag.store(true, Ordering::SeqCst);
}
