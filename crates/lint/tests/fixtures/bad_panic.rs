// Known-bad: unwrap/expect/panic! in a hot-path fn without
// `// lint: allow(panic, …)`. Must fire `hot_panic` per site.

pub fn on_tuple(slots: &[u64], idx: usize) -> u64 {
    let first = slots.first().unwrap();
    let at = slots.get(idx).expect("index routed to this shard");
    if *first > *at {
        panic!("chain corrupted");
    }
    *at
}
