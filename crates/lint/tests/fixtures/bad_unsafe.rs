// Known-bad: an `unsafe` block with no `// SAFETY:` comment, in a file
// that is not on the unsafe allowlist. Must fire `unsafe_safety` and
// `unsafe_allowlist`.

pub fn read_first(bytes: &[u8]) -> u8 {
    unsafe { *bytes.as_ptr() }
}
