// Known-bad: a fn tagged `// lint: no_alloc` that allocates four
// different ways. Must fire `no_alloc` once per site.

// lint: no_alloc
pub fn probe(keys: &[u64]) -> usize {
    let scratch: Vec<u64> = Vec::new();
    let copy = keys.to_vec();
    let owned = copy.clone();
    let label = format!("{} keys", owned.len());
    scratch.len() + label.len()
}
