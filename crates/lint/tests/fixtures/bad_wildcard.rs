// Known-bad: a `_ =>` arm in a match over a protocol enum. Must fire
// `enum_wildcard` — a new JoinMsg variant would silently fall through
// here instead of failing the build.

pub enum JoinMsg {
    Batch(u32),
    Eof,
    Barrier(u64),
}

pub fn handle(msg: JoinMsg) -> u32 {
    match msg {
        JoinMsg::Batch(n) => n,
        _ => 0,
    }
}
