//! Every rule must fire on its known-bad fixture, and the known-good
//! fixture must come back clean even under the strictest config. The
//! fixtures live in `tests/fixtures/` — the workspace walker skips
//! that directory, so they never pollute a real run.

use nova_lint::rules::{check_file, Finding, Region, RuleConfig};
use nova_lint::scanner::SourceFile;

fn scan(name: &str, src: &str, cfg: &RuleConfig) -> Vec<Finding> {
    let file = SourceFile::parse(name, src);
    check_file(&file, cfg)
}

fn count(findings: &[Finding], rule: &str) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

/// A config that treats the given fixture as whole-file hot path,
/// allows `unsafe` nowhere, and polices `JoinMsg` as a protocol enum.
fn strict() -> RuleConfig {
    RuleConfig {
        hot_regions: vec![("__any__".into(), Region::WholeFile)],
        unsafe_allowlist: Vec::new(),
        protocol_enums: vec!["JoinMsg".into()],
    }
}

fn hot(name: &str) -> RuleConfig {
    RuleConfig {
        hot_regions: vec![(name.into(), Region::WholeFile)],
        ..RuleConfig::default()
    }
}

#[test]
fn unsafe_without_safety_fires_both_unsafe_rules() {
    let src = include_str!("fixtures/bad_unsafe.rs");
    let findings = scan("fixtures/bad_unsafe.rs", src, &RuleConfig::default());
    assert_eq!(count(&findings, "unsafe_safety"), 1, "{findings:#?}");
    assert_eq!(count(&findings, "unsafe_allowlist"), 1, "{findings:#?}");
    // Allowlisting the file waives the confinement rule but never the
    // SAFETY-comment requirement.
    let cfg = RuleConfig {
        unsafe_allowlist: vec!["bad_unsafe.rs".into()],
        ..RuleConfig::default()
    };
    let findings = scan("fixtures/bad_unsafe.rs", src, &cfg);
    assert_eq!(count(&findings, "unsafe_safety"), 1);
    assert_eq!(count(&findings, "unsafe_allowlist"), 0);
}

#[test]
fn lock_in_hot_fn_fires() {
    let src = include_str!("fixtures/bad_lock.rs");
    let findings = scan("fixtures/bad_lock.rs", src, &hot("bad_lock.rs"));
    assert!(count(&findings, "hot_lock") >= 1, "{findings:#?}");
    // Outside a hot region the same code is fine.
    let findings = scan("fixtures/bad_lock.rs", src, &RuleConfig::default());
    assert_eq!(count(&findings, "hot_lock"), 0);
}

#[test]
fn unjustified_relaxed_fires_once_and_cmp_ordering_never_does() {
    let src = include_str!("fixtures/bad_ordering.rs");
    let findings = scan("fixtures/bad_ordering.rs", src, &RuleConfig::default());
    // Exactly one: the atomic site. `std::cmp::Ordering` in the same
    // file must not be mistaken for a memory ordering.
    assert_eq!(count(&findings, "ordering_relaxed"), 1, "{findings:#?}");
}

#[test]
fn seqcst_fires() {
    let src = include_str!("fixtures/bad_seqcst.rs");
    let findings = scan("fixtures/bad_seqcst.rs", src, &RuleConfig::default());
    assert_eq!(count(&findings, "ordering_seqcst"), 1, "{findings:#?}");
}

#[test]
fn tagged_no_alloc_fn_fires_per_allocation_site() {
    let src = include_str!("fixtures/bad_alloc.rs");
    let findings = scan("fixtures/bad_alloc.rs", src, &RuleConfig::default());
    // Vec::new, .to_vec(), .clone(), format! — four distinct sites.
    assert_eq!(count(&findings, "no_alloc"), 4, "{findings:#?}");
}

#[test]
fn wildcard_arm_over_protocol_enum_fires() {
    let src = include_str!("fixtures/bad_wildcard.rs");
    let cfg = RuleConfig {
        protocol_enums: vec!["JoinMsg".into()],
        ..RuleConfig::default()
    };
    let findings = scan("fixtures/bad_wildcard.rs", src, &cfg);
    assert_eq!(count(&findings, "enum_wildcard"), 1, "{findings:#?}");
    // An enum not declared as a protocol may be matched however.
    let findings = scan("fixtures/bad_wildcard.rs", src, &RuleConfig::default());
    assert_eq!(count(&findings, "enum_wildcard"), 0);
}

#[test]
fn panic_family_in_hot_fn_fires_per_site() {
    let src = include_str!("fixtures/bad_panic.rs");
    let findings = scan("fixtures/bad_panic.rs", src, &hot("bad_panic.rs"));
    // .unwrap(), .expect(), panic! — three distinct sites.
    assert_eq!(count(&findings, "hot_panic"), 3, "{findings:#?}");
}

#[test]
fn annotated_clean_fixture_survives_the_strictest_config() {
    let src = include_str!("fixtures/clean.rs");
    let mut cfg = strict();
    cfg.hot_regions = vec![("clean.rs".into(), Region::WholeFile)];
    cfg.unsafe_allowlist = vec!["clean.rs".into()];
    let findings = scan("fixtures/clean.rs", src, &cfg);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn fingerprints_are_line_number_independent() {
    let src = include_str!("fixtures/bad_seqcst.rs");
    let shifted = format!("// one extra line above\n{src}");
    let a = scan("fixtures/bad_seqcst.rs", src, &RuleConfig::default());
    let b = scan("fixtures/bad_seqcst.rs", &shifted, &RuleConfig::default());
    assert_eq!(a[0].fingerprint(), b[0].fingerprint());
    assert_ne!(a[0].line, b[0].line);
}
