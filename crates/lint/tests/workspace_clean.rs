//! The real workspace, under the real policy, must have zero findings
//! beyond the checked-in baseline. This is the test that makes
//! `cargo test` enforce the concurrency invariants on every PR.

use nova_lint::check_workspace;
use nova_lint::report::{partition, Baseline};
use nova_lint::rules::RuleConfig;
use std::path::Path;

#[test]
fn workspace_has_no_findings_beyond_the_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = check_workspace(&root, &RuleConfig::nova()).expect("workspace scan");
    let baseline_src =
        std::fs::read_to_string(root.join("lint-baseline.json")).expect("lint-baseline.json");
    let baseline = Baseline::parse(&baseline_src);
    let (new, _baselined) = partition(&findings, &baseline);
    assert!(
        new.is_empty(),
        "new lint findings — annotate the site (see DESIGN.md §11) or, \
         for accepted debt, re-run with --write-baseline:\n{}",
        new.iter()
            .map(|f| format!("  {}:{} [{}] {}", f.file, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn the_walker_sees_the_whole_workspace() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = nova_lint::workspace_files(&root).expect("walk");
    let rels: Vec<String> = files
        .iter()
        .map(|p| nova_lint::rel_path(&root, p))
        .collect();
    // Spot-check that the files the policy names are actually scanned —
    // a silent walker regression would make the clean run meaningless.
    for must in [
        "crates/exec/src/join.rs",
        "crates/exec/src/channel.rs",
        "crates/exec/src/metrics.rs",
        "crates/exec/src/affinity.rs",
        "crates/runtime/src/window.rs",
    ] {
        assert!(rels.iter().any(|r| r == must), "walker missed {must}");
    }
    // And that fixtures stay out of real runs.
    assert!(
        rels.iter().all(|r| !r.contains("fixtures")),
        "fixtures leaked into the workspace scan"
    );
}
