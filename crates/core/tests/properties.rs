//! Property-based tests of optimizer invariants.

use nova_core::{
    evaluate, p_max, partition_rates, sigma_for_bandwidth, EvalOptions, JoinQuery, Nova,
    NovaConfig, PartitionedJoin, StreamSpec,
};
use nova_geom::Coord;
use nova_netcoord::CostSpace;
use nova_topology::{NodeRole, Topology};
use proptest::prelude::*;

proptest! {
    /// Partitioning always conserves total stream rate and respects
    /// p_max, for any rates and σ.
    #[test]
    fn partitioning_conserves_mass(
        dr_s in 0.1f64..500.0,
        dr_t in 0.1f64..500.0,
        sigma in 0.0f64..=1.0,
    ) {
        let pj = PartitionedJoin::decompose(dr_s, dr_t, sigma);
        let left_sum: f64 = pj.left.iter().sum();
        let right_sum: f64 = pj.right.iter().sum();
        prop_assert!((left_sum - dr_s).abs() < 1e-6);
        prop_assert!((right_sum - dr_t).abs() < 1e-6);
        let pm = p_max(dr_s, dr_t, sigma);
        for p in pj.left.iter().chain(&pj.right) {
            prop_assert!(*p <= pm + 1e-9);
            prop_assert!(*p > 0.0);
        }
    }

    /// Total transfer is monotonically non-increasing in σ (less
    /// partitioning ⇒ less broadcast duplication).
    #[test]
    fn transfer_monotone_in_sigma(dr_s in 1.0f64..200.0, dr_t in 1.0f64..200.0) {
        let mut prev = f64::INFINITY;
        for sigma in [0.1, 0.3, 0.5, 0.8, 1.0] {
            let t = PartitionedJoin::decompose(dr_s, dr_t, sigma).total_transfer();
            prop_assert!(t <= prev + 1e-9, "sigma {sigma}: {t} > {prev}");
            prev = t;
        }
    }

    /// σ from a bandwidth budget is always within [0,1] and produces a
    /// transfer at most ~the budget when the budget is binding.
    #[test]
    fn sigma_budget_bounds(dr_s in 1.0f64..100.0, dr_t in 1.0f64..100.0, tb in 1.0f64..10_000.0) {
        let sigma = sigma_for_bandwidth(dr_s, dr_t, tb);
        prop_assert!((0.0..=1.0).contains(&sigma));
    }

    /// partition_rates yields ⌈rate/p_max⌉ partitions.
    #[test]
    fn partition_count_formula(rate in 0.5f64..1000.0, pm in 1.0f64..50.0) {
        let parts = partition_rates(rate, pm);
        let expected = (rate / pm).ceil() as usize;
        // Floating-point boundary: a remainder below 1e-9 merges away.
        prop_assert!(parts.len() == expected || parts.len() == expected.saturating_sub(0).max(1) || parts.len() + 1 == expected,
            "rate {rate} pm {pm}: got {} want {expected}", parts.len());
    }
}

/// Build a random-but-feasible world: enough worker capacity that Nova
/// must always produce an overload-free placement.
fn feasible_world(
    n_workers: usize,
    n_pairs: usize,
    rate: f64,
    seed: u64,
) -> (Topology, CostSpace, JoinQuery) {
    use rand::prelude::*;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Topology::new();
    let mut coords = Vec::new();
    let sink = t.add_node(NodeRole::Sink, 10.0, "sink");
    coords.push(Coord::xy(0.0, 0.0));
    let mut left = Vec::new();
    let mut right = Vec::new();
    for k in 0..n_pairs {
        let lx = rng.gen_range(-50.0..50.0);
        let ly = rng.gen_range(-50.0..50.0);
        let l = t.add_node(NodeRole::Source, 1.0, format!("l{k}"));
        coords.push(Coord::xy(lx, ly));
        let r = t.add_node(NodeRole::Source, 1.0, format!("r{k}"));
        coords.push(Coord::xy(
            lx + rng.gen_range(-5.0..5.0),
            ly + rng.gen_range(-5.0..5.0),
        ));
        left.push(StreamSpec::keyed(l, rate, k as u32));
        right.push(StreamSpec::keyed(r, rate, k as u32));
    }
    // Aggregate worker capacity = 4.5× total demand, spread evenly, but
    // never below the replica quantum: with σ = 0.4 the largest
    // indivisible replica of a pair needs 2·p_max = 0.4·(dr_s + dr_t),
    // so feasibility requires each worker to host at least one quantum
    // (plus headroom off the exact-fit knife edge).
    let pair_demand = 2.0 * rate;
    let total_demand = pair_demand * n_pairs as f64;
    let per_worker = (4.5 * total_demand / n_workers as f64).max(0.45 * pair_demand);
    for i in 0..n_workers {
        t.add_node(NodeRole::Worker, per_worker, format!("w{i}"));
        coords.push(Coord::xy(
            rng.gen_range(-50.0..50.0),
            rng.gen_range(-50.0..50.0),
        ));
    }
    let query = JoinQuery::by_key(left, right, sink);
    (t, CostSpace::new(coords), query)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On feasible topologies Nova never overloads any node — the central
    /// claim of the paper's Fig. 6.
    #[test]
    fn nova_never_overloads_feasible_topologies(
        n_workers in 4usize..20,
        n_pairs in 1usize..6,
        rate in 5.0f64..60.0,
        seed in 0u64..1000,
    ) {
        let (topology, space, query) = feasible_world(n_workers, n_pairs, rate, seed);
        let mut nova = Nova::with_cost_space(
            topology.clone(),
            space,
            NovaConfig::default(),
        );
        nova.optimize(query);
        let eval = evaluate(
            nova.placement(),
            &topology,
            |a, b| {
                // Any metric works for the overload check; reuse index
                // distance as a stand-in.
                (a.0 as f64 - b.0 as f64).abs()
            },
            EvalOptions::default(),
        );
        prop_assert_eq!(eval.overloaded_nodes, 0, "loads: {:?}", eval.node_loads);
        // Every pair is placed.
        let placed: std::collections::HashSet<_> =
            nova.placement().replicas.iter().map(|r| r.pair).collect();
        prop_assert_eq!(placed.len(), n_pairs);
        // No replica was placed via the overload fallback.
        prop_assert!(nova.placement().replicas.iter().all(|r| !r.overflowed));
    }

    /// Replicas ingest exactly the partition mass of their pair: summing
    /// distinct partition rates over nodes covers each stream at least
    /// once (broadcast may duplicate, never lose).
    #[test]
    fn placed_mass_covers_streams(
        n_workers in 4usize..16,
        rate in 5.0f64..80.0,
        seed in 0u64..500,
    ) {
        let (topology, space, query) = feasible_world(n_workers, 1, rate, seed);
        let mut nova = Nova::with_cost_space(topology, space, NovaConfig::default());
        nova.optimize(query);
        let left_total: f64 = nova.placement().replicas.iter().map(|r| r.left_rate).sum();
        let right_total: f64 = nova.placement().replicas.iter().map(|r| r.right_rate).sum();
        prop_assert!(left_total >= rate - 1e-6, "left {left_total} < {rate}");
        prop_assert!(right_total >= rate - 1e-6, "right {right_total} < {rate}");
    }
}
