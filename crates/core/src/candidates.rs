//! Candidate node selection for Phase III (paper §3.4).
//!
//! For every join replica Nova selects hosting candidates around the
//! operator's virtual coordinates. Two query shapes are served:
//!
//! * [`CandidateIndex::knn`] — the paper's k-nearest-neighbour candidate
//!   set (`V_knn`), with `k` scaled by the operator's demand,
//! * [`CandidateIndex::nearest_capable`] — "nearest node with at least
//!   x remaining capacity", the exact query the neighborhood-expansion
//!   fallback converges to. Served in O(log n) by a capacity-augmented
//!   k-d tree ([`nova_geom::CapacityKdTree`]) whose per-subtree maxima
//!   prune drained regions — without this, placement over depleted
//!   central regions degenerates to scanning thousands of unusable
//!   nodes per replica.
//!
//! The index tolerates re-optimization churn (§3.5): removals tombstone,
//! additions go to a linear side table, and heavy churn triggers a cheap
//! rebuild. For high-dimensional multi-metric cost spaces (§3.6) an
//! approximate Annoy-style backend can be selected by threshold.

use std::collections::HashMap;

use nova_geom::{AnnoyIndex, AnnoyParams, CapacityKdTree, Coord, Neighbor, NnIndex};
use nova_netcoord::CostSpace;
use nova_topology::{NodeId, NodeRole, Topology};

/// How many churn events (relative to index size) trigger a rebuild.
const REBUILD_FRACTION: f64 = 0.1;

enum Backend {
    /// Exact capacity-aware k-d tree (default).
    Exact(CapacityKdTree),
    /// Approximate random-projection forest (high-dim cost spaces).
    Approx(AnnoyIndex),
}

/// Churn-tolerant, capacity-aware nearest-neighbour index over
/// placement-eligible nodes.
pub struct CandidateIndex {
    backend: Backend,
    /// NodeId for each indexed point.
    ids: Vec<NodeId>,
    /// Remaining capacity per indexed point (mirrors the exact backend).
    caps: Vec<f64>,
    /// NodeId → position in `ids`.
    pos: HashMap<NodeId, u32>,
    /// Tombstones for removed indexed nodes.
    dead: Vec<bool>,
    /// Nodes added after the last (re)build: `(id, coord, capacity)`.
    extra: Vec<(NodeId, Coord, f64)>,
    dead_count: usize,
    exact_threshold: usize,
    seed: u64,
}

impl CandidateIndex {
    /// Build an index over every *placement-eligible* node of the
    /// topology: workers and sources with live coordinates, with their
    /// full capacities as the initial availability. (Sinks are pinned
    /// and never candidates.)
    pub fn build(
        topology: &Topology,
        space: &CostSpace,
        exact_threshold: usize,
        seed: u64,
    ) -> Self {
        let mut ids = Vec::with_capacity(topology.len());
        let mut coords = Vec::with_capacity(topology.len());
        let mut caps = Vec::with_capacity(topology.len());
        for node in topology.nodes() {
            if node.role == NodeRole::Sink {
                continue;
            }
            if let Some(c) = space.coord(node.id) {
                ids.push(node.id);
                coords.push(c);
                caps.push(node.capacity);
            }
        }
        let backend = Self::make_backend(&coords, &caps, exact_threshold, seed);
        let dead = vec![false; ids.len()];
        let pos = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i as u32))
            .collect();
        CandidateIndex {
            backend,
            ids,
            caps,
            pos,
            dead,
            extra: Vec::new(),
            dead_count: 0,
            exact_threshold,
            seed,
        }
    }

    fn make_backend(coords: &[Coord], caps: &[f64], exact_threshold: usize, seed: u64) -> Backend {
        if coords.len() <= exact_threshold {
            Backend::Exact(CapacityKdTree::build(coords, caps))
        } else {
            Backend::Approx(AnnoyIndex::build(
                coords,
                AnnoyParams {
                    seed,
                    ..AnnoyParams::default()
                },
            ))
        }
    }

    /// Number of live candidates.
    pub fn live_count(&self) -> usize {
        self.ids.len() - self.dead_count + self.extra.len()
    }

    /// Update a node's remaining capacity (called as replicas consume
    /// availability). O(log n) on the exact backend.
    pub fn set_avail(&mut self, id: NodeId, avail: f64) {
        if let Some(&p) = self.pos.get(&id) {
            let p = p as usize;
            if !self.dead[p] {
                self.caps[p] = avail;
                if let Backend::Exact(tree) = &mut self.backend {
                    tree.set_capacity(p, avail);
                }
                return;
            }
        }
        if let Some(slot) = self.extra.iter_mut().find(|(x, _, _)| *x == id) {
            slot.2 = avail;
        }
    }

    /// The nearest live node whose remaining capacity is at least `need`.
    pub fn nearest_capable(&self, query: &Coord, need: f64) -> Option<(NodeId, f64)> {
        let mut best: Option<(NodeId, f64)> = None;
        match &self.backend {
            Backend::Exact(tree) => {
                // Dead nodes carry −∞ capacity, so the tree skips them.
                if let Some((p, d)) = tree.nearest_capable(query, need) {
                    best = Some((self.ids[p], d));
                }
            }
            Backend::Approx(annoy) => {
                // Growing probe with capacity filtering.
                let limit = self.ids.len();
                let mut fetch = 32.min(limit.max(1));
                loop {
                    let hit = annoy
                        .knn(query, fetch)
                        .into_iter()
                        .find(|n| !self.dead[n.index] && self.caps[n.index] >= need);
                    if let Some(n) = hit {
                        best = Some((self.ids[n.index], n.dist));
                        break;
                    }
                    if fetch >= limit {
                        break;
                    }
                    fetch = (fetch * 4).min(limit);
                }
            }
        }
        for (id, coord, cap) in &self.extra {
            if *cap >= need {
                let d = coord.dist(query);
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((*id, d));
                }
            }
        }
        best
    }

    /// k nearest live candidates to `query`, closest first (capacity is
    /// ignored — this is the raw `V_knn` set).
    pub fn knn(&self, query: &Coord, k: usize) -> Vec<(NodeId, f64)> {
        if k == 0 {
            return Vec::new();
        }
        let limit = self.ids.len();
        let mut out: Vec<(NodeId, f64)> = Vec::new();
        if limit > 0 {
            let mut fetch = (k + 16).min(limit);
            loop {
                let raw: Vec<Neighbor> = match &self.backend {
                    Backend::Exact(tree) => tree.knn_capable(query, fetch, f64::NEG_INFINITY),
                    Backend::Approx(annoy) => annoy.knn(query, fetch),
                };
                let raw_len = raw.len();
                out = raw
                    .into_iter()
                    .filter(|n| !self.dead[n.index])
                    .map(|n| (self.ids[n.index], n.dist))
                    .collect();
                if out.len() >= k || raw_len >= limit {
                    break;
                }
                fetch = (fetch * 4).min(limit);
            }
        }
        for (id, coord, _) in &self.extra {
            out.push((*id, coord.dist(query)));
        }
        out.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        out.truncate(k);
        out
    }

    /// Add a node (e.g. a worker that just joined, §3.5).
    pub fn add(&mut self, id: NodeId, coord: Coord) {
        self.add_with_capacity(id, coord, f64::MAX);
    }

    /// Add a node with a known remaining capacity.
    pub fn add_with_capacity(&mut self, id: NodeId, coord: Coord, capacity: f64) {
        self.extra.push((id, coord, capacity));
        self.maybe_rebuild();
    }

    /// Remove a node (failure/departure). No-op if the node is unknown.
    pub fn remove(&mut self, id: NodeId) {
        if let Some(&p) = self.pos.get(&id) {
            let p = p as usize;
            if !self.dead[p] {
                self.dead[p] = true;
                self.dead_count += 1;
                self.caps[p] = f64::NEG_INFINITY;
                if let Backend::Exact(tree) = &mut self.backend {
                    tree.set_capacity(p, f64::NEG_INFINITY);
                }
            }
        }
        self.extra.retain(|(x, _, _)| *x != id);
        self.maybe_rebuild();
    }

    /// Update a node's coordinate (NCS drift re-embedding): remove + add
    /// preserving its capacity.
    pub fn update_coord(&mut self, id: NodeId, coord: Coord) {
        let cap = self
            .pos
            .get(&id)
            .map(|&p| self.caps[p as usize])
            .filter(|c| c.is_finite())
            .or_else(|| {
                self.extra
                    .iter()
                    .find(|(x, _, _)| *x == id)
                    .map(|(_, _, c)| *c)
            })
            .unwrap_or(f64::MAX);
        self.remove(id);
        self.extra.push((id, coord, cap));
    }

    fn maybe_rebuild(&mut self) {
        let churn = self.dead_count + self.extra.len();
        if churn as f64 > REBUILD_FRACTION * (self.ids.len().max(16)) as f64 {
            self.rebuild();
        }
    }

    /// Force a full rebuild folding tombstones and the side table in.
    pub fn rebuild(&mut self) {
        let mut ids = Vec::with_capacity(self.live_count());
        let mut coords = Vec::with_capacity(self.live_count());
        let mut caps = Vec::with_capacity(self.live_count());
        let points: Vec<Coord> = match &self.backend {
            Backend::Exact(tree) => tree.points().to_vec(),
            Backend::Approx(annoy) => annoy.points().to_vec(),
        };
        for (i, c) in points.into_iter().enumerate() {
            if !self.dead[i] {
                ids.push(self.ids[i]);
                coords.push(c);
                caps.push(self.caps[i]);
            }
        }
        for (id, c, cap) in self.extra.drain(..) {
            ids.push(id);
            coords.push(c);
            caps.push(cap);
        }
        self.backend = Self::make_backend(&coords, &caps, self.exact_threshold, self.seed);
        self.dead = vec![false; ids.len()];
        self.dead_count = 0;
        self.pos = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i as u32))
            .collect();
        self.caps = caps;
        self.ids = ids;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(n: usize) -> (Topology, CostSpace) {
        let mut t = Topology::new();
        let mut coords = Vec::new();
        for i in 0..n {
            let role = if i == 0 {
                NodeRole::Sink
            } else {
                NodeRole::Worker
            };
            t.add_node(role, 100.0, format!("n{i}"));
            coords.push(Coord::xy(i as f64, 0.0));
        }
        (t, CostSpace::new(coords))
    }

    #[test]
    fn sink_is_never_a_candidate() {
        let (t, s) = setup(10);
        let idx = CandidateIndex::build(&t, &s, 1000, 1);
        let got = idx.knn(&Coord::xy(0.0, 0.0), 10);
        assert_eq!(got.len(), 9);
        assert!(got.iter().all(|(id, _)| *id != NodeId(0)));
    }

    #[test]
    fn knn_returns_nearest_live_nodes() {
        let (t, s) = setup(20);
        let idx = CandidateIndex::build(&t, &s, 1000, 1);
        let got = idx.knn(&Coord::xy(5.0, 0.0), 3);
        assert_eq!(got[0].0, NodeId(5));
        assert!(got.iter().map(|(_, d)| *d).is_sorted());
    }

    #[test]
    fn nearest_capable_prunes_drained_regions() {
        let (t, s) = setup(50);
        let mut idx = CandidateIndex::build(&t, &s, 1000, 1);
        // Drain nodes 1..=30 to 5 units each.
        for i in 1..=30u32 {
            idx.set_avail(NodeId(i), 5.0);
        }
        // From x=1: nearest with ≥ 50 capacity is node 31.
        let (id, d) = idx.nearest_capable(&Coord::xy(1.0, 0.0), 50.0).unwrap();
        assert_eq!(id, NodeId(31));
        assert_eq!(d, 30.0);
        // Small demands still use the drained-but-alive nodes.
        let (id, _) = idx.nearest_capable(&Coord::xy(5.0, 0.0), 4.0).unwrap();
        assert_eq!(id, NodeId(5));
        // Impossible demand.
        assert!(idx.nearest_capable(&Coord::xy(0.0, 0.0), 1e9).is_none());
    }

    #[test]
    fn removed_nodes_disappear_from_results() {
        let (t, s) = setup(10);
        let mut idx = CandidateIndex::build(&t, &s, 1000, 1);
        idx.remove(NodeId(5));
        let got = idx.knn(&Coord::xy(5.0, 0.0), 9);
        assert!(got.iter().all(|(id, _)| *id != NodeId(5)));
        assert_eq!(idx.live_count(), 8);
        // Capacity queries skip removed nodes too.
        let (id, _) = idx.nearest_capable(&Coord::xy(5.0, 0.0), 10.0).unwrap();
        assert_ne!(id, NodeId(5));
    }

    #[test]
    fn added_nodes_appear_in_results() {
        let (t, s) = setup(10);
        let mut idx = CandidateIndex::build(&t, &s, 1000, 1);
        idx.add_with_capacity(NodeId(100), Coord::xy(5.1, 0.0), 40.0);
        let got = idx.knn(&Coord::xy(5.1, 0.0), 1);
        assert_eq!(got[0].0, NodeId(100));
        // And in capacity queries, respecting their capacity.
        let (id, _) = idx.nearest_capable(&Coord::xy(5.1, 0.0), 35.0).unwrap();
        assert_eq!(id, NodeId(100));
        idx.set_avail(NodeId(100), 1.0);
        let (id, _) = idx.nearest_capable(&Coord::xy(5.1, 0.0), 35.0).unwrap();
        assert_ne!(id, NodeId(100));
    }

    #[test]
    fn update_coord_moves_a_node() {
        let (t, s) = setup(10);
        let mut idx = CandidateIndex::build(&t, &s, 1000, 1);
        idx.update_coord(NodeId(9), Coord::xy(-100.0, 0.0));
        let got = idx.knn(&Coord::xy(-100.0, 0.0), 1);
        assert_eq!(got[0].0, NodeId(9));
        let near_old = idx.knn(&Coord::xy(9.0, 0.0), 3);
        assert!(near_old.iter().all(|(id, _)| *id != NodeId(9)));
    }

    #[test]
    fn heavy_churn_triggers_rebuild_and_stays_correct() {
        let (t, s) = setup(40);
        let mut idx = CandidateIndex::build(&t, &s, 1000, 1);
        for i in 1..30 {
            idx.remove(NodeId(i));
        }
        assert_eq!(idx.live_count(), 10);
        let got = idx.knn(&Coord::xy(39.0, 0.0), 5);
        assert_eq!(got.len(), 5);
        assert_eq!(got[0].0, NodeId(39));
        for (id, _) in got {
            assert!(id.0 >= 30);
        }
        // Capacities survive rebuilds.
        idx.set_avail(NodeId(39), 7.0);
        let (id, _) = idx.nearest_capable(&Coord::xy(39.0, 0.0), 50.0).unwrap();
        assert_ne!(id, NodeId(39));
    }

    #[test]
    fn approximate_backend_used_beyond_threshold() {
        let (t, s) = setup(200);
        // Force the Annoy backend with a tiny threshold.
        let mut idx = CandidateIndex::build(&t, &s, 50, 1);
        let got = idx.knn(&Coord::xy(100.0, 0.0), 5);
        assert_eq!(got.len(), 5);
        assert_eq!(got[0].0, NodeId(100));
        // Capacity-aware fallback probing works on the approximate path.
        for i in 90..=110u32 {
            idx.set_avail(NodeId(i), 2.0);
        }
        let (id, _) = idx.nearest_capable(&Coord::xy(100.0, 0.0), 50.0).unwrap();
        assert!(
            !(90..=110).contains(&id.0),
            "drained region skipped, got {id}"
        );
    }

    #[test]
    fn set_avail_on_unknown_node_is_noop() {
        let (t, s) = setup(5);
        let mut idx = CandidateIndex::build(&t, &s, 1000, 1);
        idx.set_avail(NodeId(999), 10.0);
        assert_eq!(idx.live_count(), 4);
    }
}
