//! Phase III: physical replica assignment (paper §3.4).
//!
//! Maps each join pair from its virtual cost-space position onto physical
//! nodes under capacity (Eq. 2), availability (Eq. 3) and bandwidth
//! (Eq. 4) constraints:
//!
//! 1. *Bandwidth-aware partitioning* splits the pair's input streams into
//!    partitions of at most `p_max` (σ-controlled, [`crate::partitioning`]).
//! 2. *Candidate selection* runs a k-NN search around the virtual
//!    position, with `k` scaled by the pair's demand relative to the
//!    median available capacity; candidates below `C_min` are filtered.
//! 3. *Sequential assignment* places the `m × n` replicas on candidates
//!    in distance order. Partitions already present on a node are not
//!    charged again (the paper "merges" co-located replicas: a node's
//!    required capacity is the sum of the *distinct* partition rates it
//!    ingests) — this is what lets the §3.4 example pack half of 625
//!    unit replicas onto node B (40 capacity) and half onto C.
//! 4. On exhaustion, the configured overflow policy either expands the
//!    neighborhood (more network overhead) or distributes the remaining
//!    replicas evenly accepting overload — exactly the two fallbacks the
//!    paper describes.

use std::collections::HashMap;

use nova_geom::Coord;
use nova_topology::{NodeId, NodeRole, Topology};
use serde::{Deserialize, Serialize};

use crate::candidates::CandidateIndex;
use crate::partitioning::PartitionedJoin;
use crate::plan::JoinQuery;
use crate::types::{JoinPair, PairId};

/// What to do when no candidate can host a replica (paper §3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverflowPolicy {
    /// Distribute the remaining replicas evenly across the current
    /// candidates, accepting a risk of overload.
    DistributeEvenly,
    /// Expand the candidate neighborhood (doubling k up to
    /// `max_expansions` times, potentially increasing network overhead),
    /// then fall back to even distribution.
    ExpandThenDistribute {
        /// Maximum number of k-doublings before giving up.
        max_expansions: u32,
    },
}

impl Default for OverflowPolicy {
    fn default() -> Self {
        OverflowPolicy::ExpandThenDistribute { max_expansions: 12 }
    }
}

/// Tunables of the physical assignment phase.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PhaseThreeConfig {
    /// Partitioning scale factor σ ∈ [0, 1] (paper default 0.4).
    pub sigma: f64,
    /// Resource availability threshold `C_min` (Eq. 3): nodes whose
    /// available capacity is below this are not considered candidates.
    pub c_min: f64,
    /// Lower bound on the k-NN `k` (the §3.4 walk-through uses k = 2).
    pub k_min: usize,
    /// Overflow behavior.
    pub overflow: OverflowPolicy,
}

impl Default for PhaseThreeConfig {
    fn default() -> Self {
        PhaseThreeConfig {
            sigma: 0.4,
            c_min: 0.0,
            k_min: 2,
            overflow: OverflowPolicy::default(),
        }
    }
}

/// Remaining capacity per node during and after placement.
#[derive(Debug, Clone)]
pub struct Availability {
    avail: Vec<f64>,
}

impl Availability {
    /// Initialize from the topology's node capacities.
    pub fn from_topology(topology: &Topology) -> Self {
        Availability {
            avail: topology.nodes().iter().map(|n| n.capacity).collect(),
        }
    }

    /// Remaining capacity of a node.
    pub fn get(&self, id: NodeId) -> f64 {
        self.avail.get(id.idx()).copied().unwrap_or(0.0)
    }

    /// Consume capacity (may go negative under accepted overload).
    pub fn take(&mut self, id: NodeId, amount: f64) {
        if id.idx() >= self.avail.len() {
            self.avail.resize(id.idx() + 1, 0.0);
        }
        self.avail[id.idx()] -= amount;
    }

    /// Return capacity (when replicas are undeployed, §3.5).
    pub fn release(&mut self, id: NodeId, amount: f64) {
        self.take(id, -amount);
    }

    /// Reset one node's remaining capacity (capacity change events).
    pub fn set(&mut self, id: NodeId, value: f64) {
        if id.idx() >= self.avail.len() {
            self.avail.resize(id.idx() + 1, 0.0);
        }
        self.avail[id.idx()] = value;
    }

    /// Median *available* capacity over placement-eligible nodes (workers
    /// and sources) — the denominator of the adaptive k (§3.4).
    pub fn median_capacity(&self, topology: &Topology) -> f64 {
        let mut caps: Vec<f64> = topology
            .nodes()
            .iter()
            .filter(|n| n.role != NodeRole::Sink)
            .map(|n| self.get(n.id))
            .filter(|c| *c > 0.0)
            .collect();
        if caps.is_empty() {
            return 1.0;
        }
        let mid = caps.len() / 2;
        caps.select_nth_unstable_by(mid, f64::total_cmp);
        caps[mid].max(1.0)
    }
}

/// One placed (merged) join replica: all partitions of a pair hosted on
/// one node, with the paths its data travels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacedReplica {
    /// The join pair this replica belongs to.
    pub pair: PairId,
    /// Hosting node.
    pub node: NodeId,
    /// Left input rate ingested by this node (sum of its distinct left
    /// partitions).
    pub left_rate: f64,
    /// Right input rate ingested.
    pub right_rate: f64,
    /// Indices of the left-stream partitions hosted here (into the
    /// pair's [`crate::partitioning::PartitionedJoin::left`]). Runtimes
    /// use this to route tuples; unpartitioned placements carry `[0]`.
    pub left_partitions: Vec<u32>,
    /// Indices of the right-stream partitions hosted here.
    pub right_partitions: Vec<u32>,
    /// Number of (left, right) sub-replicas merged into this instance.
    pub merged_replicas: u32,
    /// Route of the left input: `[source, ..., node]`.
    pub left_path: Vec<NodeId>,
    /// Route of the right input: `[source, ..., node]`.
    pub right_path: Vec<NodeId>,
    /// Route of the output: `[node, ..., sink]`.
    pub out_path: Vec<NodeId>,
    /// Output rate towards the sink (selectivity applied).
    pub output_rate: f64,
    /// Whether this replica was placed by the overflow fallback and may
    /// overload its node.
    pub overflowed: bool,
}

impl PlacedReplica {
    /// Required capacity of this merged instance: sum of distinct
    /// partition rates it ingests (paper §2.2).
    pub fn required_capacity(&self) -> f64 {
        self.left_rate + self.right_rate
    }
}

/// A full operator-to-node mapping for a query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Placement {
    /// Name of the producing approach ("nova", "sink", ...).
    pub approach: String,
    /// All placed (merged) replicas.
    pub replicas: Vec<PlacedReplica>,
}

impl Placement {
    /// An empty placement for the given approach label.
    pub fn new(approach: impl Into<String>) -> Self {
        Placement {
            approach: approach.into(),
            replicas: Vec::new(),
        }
    }

    /// Distinct nodes hosting at least one replica.
    pub fn nodes_used(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.replicas.iter().map(|r| r.node).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Total number of merged replica instances.
    pub fn instance_count(&self) -> usize {
        self.replicas.len()
    }

    /// Total number of sub-replicas before merging.
    pub fn sub_replica_count(&self) -> usize {
        self.replicas
            .iter()
            .map(|r| r.merged_replicas as usize)
            .sum()
    }

    /// All replicas of one pair.
    pub fn replicas_of(&self, pair: PairId) -> impl Iterator<Item = &PlacedReplica> + '_ {
        self.replicas.iter().filter(move |r| r.pair == pair)
    }

    /// Remove and return all replicas of a pair (undeployment, §3.5).
    pub fn remove_pair(&mut self, pair: PairId) -> Vec<PlacedReplica> {
        let mut removed = Vec::new();
        self.replicas.retain(|r| {
            if r.pair == pair {
                removed.push(r.clone());
                false
            } else {
                true
            }
        });
        removed
    }
}

/// Per-node placement state while assigning one pair's replicas: which
/// partitions are already present (and therefore free to reuse).
#[derive(Default)]
struct NodePartitions {
    left: Vec<bool>,
    right: Vec<bool>,
    merged: u32,
    overflowed: bool,
}

/// A node is saturated once its remaining capacity drops below one
/// tuple/s — it cannot host even a minimal partition.
pub const SATURATION_FLOOR: f64 = 1.0;

/// Result of placing one pair.
#[derive(Debug, Clone)]
pub struct PlacePairOutcome {
    /// The merged placed replicas.
    pub replicas: Vec<PlacedReplica>,
}

/// Assign all replicas of one pair. Consumes capacity from `avail` and
/// keeps the candidate index's capacity view in sync.
///
/// `median_capacity` is the median available per-node capacity computed
/// once per optimization run (it scales the adaptive k of the `V_knn`
/// candidate set used by the even-distribution fallback and the
/// `DistributeEvenly` policy).
///
/// For each sub-replica the algorithm picks, in distance order, between
/// (a) a node already hosting partitions of this pair — charged only the
/// *incremental* cost of the partitions it is missing (the paper's
/// replica merging) — and (b) the nearest fresh node whose availability
/// covers both the replica's full demand and the `C_min` threshold
/// (Eq. 2–3), found in O(log n) via the capacity-aware index. Under the
/// `DistributeEvenly` policy fresh nodes are restricted to the initial
/// `V_knn` set (the paper's option 1: accept overload rather than widen
/// the neighborhood); `ExpandThenDistribute` searches globally (option
/// 2) and falls back to even distribution only when *no* node in the
/// topology can host the replica.
pub fn place_pair(
    query: &JoinQuery,
    pair: &JoinPair,
    virtual_pos: Coord,
    index: &mut CandidateIndex,
    avail: &mut Availability,
    median_capacity: f64,
    cfg: &PhaseThreeConfig,
) -> PlacePairOutcome {
    let left_stream = query.left_stream(pair);
    let right_stream = query.right_stream(pair);
    let parts = PartitionedJoin::decompose(left_stream.rate, right_stream.rate, cfg.sigma);
    if parts.replica_count() == 0 {
        return PlacePairOutcome {
            replicas: Vec::new(),
        };
    }

    // The paper's adaptive V_knn: k scales with the pair's total demand
    // relative to the median per-node availability.
    let total_required = query.required_capacity(pair);
    let k = ((total_required / median_capacity)
        .ceil()
        .max(cfg.k_min as f64) as usize)
        .min(index.live_count().max(1));
    let vknn: Vec<(NodeId, f64)> = index.knn(&virtual_pos, k);
    let restrict_to_vknn = matches!(cfg.overflow, OverflowPolicy::DistributeEvenly);

    // Nodes already hosting partitions of this pair, sorted by distance
    // to the virtual optimum (for merge reuse).
    let mut used: Vec<(NodeId, f64)> = Vec::new();
    let mut per_node: HashMap<NodeId, NodePartitions> = HashMap::new();
    let mut distribute_cursor: Option<usize> = None;

    for (li, rj, _) in parts.replicas() {
        let quantum = parts.left[li] + parts.right[rj];
        let chosen: (NodeId, f64, bool) = if let Some(cursor) = distribute_cursor.as_mut() {
            // Even-distribution fallback: round-robin over V_knn
            // regardless of remaining capacity (accepted overload).
            let (node, dist) = vknn[*cursor % vknn.len()];
            *cursor += 1;
            (node, dist, true)
        } else {
            // (a) closest already-used node that fits incrementally.
            let reuse = used
                .iter()
                .find(|(n, _)| {
                    fits(
                        avail.get(*n),
                        incremental_cost(&per_node, *n, &parts, li, rj),
                    )
                })
                .copied();
            // (b) nearest fresh node able to host the full replica and
            // satisfying C_min (Eq. 3).
            let need = quantum.max(cfg.c_min);
            let fresh = if restrict_to_vknn {
                vknn.iter()
                    .find(|(n, _)| fits(avail.get(*n), need))
                    .copied()
            } else {
                index.nearest_capable(&virtual_pos, need - 1e-9 * need.max(1.0))
            };
            match (reuse, fresh) {
                (Some((un, ud)), Some((fnode, fd))) => {
                    if ud <= fd {
                        (un, ud, false)
                    } else {
                        (fnode, fd, false)
                    }
                }
                (Some((un, ud)), None) => (un, ud, false),
                (None, Some((fnode, fd))) => (fnode, fd, false),
                (None, None) => {
                    // No node in the topology (or V_knn under the
                    // restricted policy) can host this replica: accept
                    // overload and distribute the rest evenly.
                    if vknn.is_empty() {
                        return PlacePairOutcome {
                            replicas: Vec::new(),
                        };
                    }
                    distribute_cursor = Some(1);
                    let (node, dist) = vknn[0];
                    (node, dist, true)
                }
            }
        };
        let (node, dist, overflow) = chosen;
        let incr = incremental_cost(&per_node, node, &parts, li, rj);
        avail.take(node, incr);
        index.set_avail(node, avail.get(node));
        let entry = per_node.entry(node).or_insert_with(|| NodePartitions {
            left: vec![false; parts.left.len()],
            right: vec![false; parts.right.len()],
            merged: 0,
            overflowed: false,
        });
        entry.left[li] = true;
        entry.right[rj] = true;
        entry.merged += 1;
        entry.overflowed |= overflow;
        if !used.iter().any(|(n, _)| *n == node) {
            let at = used.partition_point(|(_, d)| *d <= dist);
            used.insert(at, (node, dist));
        }
    }

    // Emit one merged replica per hosting node.
    let mut out: Vec<PlacedReplica> = per_node
        .into_iter()
        .map(|(node, np)| {
            let left_rate: f64 = parts
                .left
                .iter()
                .zip(&np.left)
                .filter_map(|(rate, present)| present.then_some(*rate))
                .sum();
            let right_rate: f64 = parts
                .right
                .iter()
                .zip(&np.right)
                .filter_map(|(rate, present)| present.then_some(*rate))
                .sum();
            let collect_indices = |mask: &[bool]| -> Vec<u32> {
                mask.iter()
                    .enumerate()
                    .filter_map(|(i, p)| p.then_some(i as u32))
                    .collect()
            };
            PlacedReplica {
                pair: pair.id,
                node,
                left_rate,
                right_rate,
                left_partitions: collect_indices(&np.left),
                right_partitions: collect_indices(&np.right),
                merged_replicas: np.merged,
                left_path: direct_path(left_stream.node, node),
                right_path: direct_path(right_stream.node, node),
                out_path: direct_path(node, query.sink),
                output_rate: query.selectivity * (left_rate + right_rate),
                overflowed: np.overflowed,
            }
        })
        .collect();
    out.sort_unstable_by_key(|r| r.node);
    PlacePairOutcome { replicas: out }
}

/// Capacity comparisons tolerate one part in 10⁹ of relative error:
/// partition rates and capacities are derived through different float
/// expressions that can disagree in the last ulp even when they are
/// mathematically equal.
#[inline]
fn fits(avail: f64, incr: f64) -> bool {
    avail >= incr - 1e-9 * incr.max(1.0)
}

fn incremental_cost(
    per_node: &HashMap<NodeId, NodePartitions>,
    node: NodeId,
    parts: &PartitionedJoin,
    li: usize,
    rj: usize,
) -> f64 {
    match per_node.get(&node) {
        None => parts.left[li] + parts.right[rj],
        Some(np) => {
            let mut c = 0.0;
            if !np.left[li] {
                c += parts.left[li];
            }
            if !np.right[rj] {
                c += parts.right[rj];
            }
            c
        }
    }
}

/// A direct routing leg: `[from, to]`, or `[from]` when colocated.
pub fn direct_path(from: NodeId, to: NodeId) -> Vec<NodeId> {
    if from == to {
        vec![from]
    } else {
        vec![from, to]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::StreamSpec;
    use nova_netcoord::CostSpace;

    /// Line topology: sink at x=0, workers at x=1..n, sources off-index.
    struct Fixture {
        topology: Topology,
        space: CostSpace,
        query: JoinQuery,
    }

    fn fixture(worker_caps: &[f64]) -> Fixture {
        let mut t = Topology::new();
        let mut coords = Vec::new();
        let sink = t.add_node(NodeRole::Sink, 1000.0, "sink");
        coords.push(Coord::xy(0.0, 0.0));
        let l = t.add_node(NodeRole::Source, 10.0, "left");
        coords.push(Coord::xy(10.0, 5.0));
        let r = t.add_node(NodeRole::Source, 10.0, "right");
        coords.push(Coord::xy(10.0, -5.0));
        for (i, cap) in worker_caps.iter().enumerate() {
            t.add_node(NodeRole::Worker, *cap, format!("w{i}"));
            // Workers near the median of the anchors (x ≈ 7).
            coords.push(Coord::xy(7.0 + i as f64 * 0.1, 0.0));
        }
        let query = JoinQuery::by_key(
            vec![StreamSpec::keyed(l, 25.0, 1)],
            vec![StreamSpec::keyed(r, 25.0, 1)],
            sink,
        );
        Fixture {
            topology: t,
            space: CostSpace::new(coords),
            query,
        }
    }

    fn run(f: &Fixture, cfg: &PhaseThreeConfig) -> (Vec<PlacedReplica>, Availability) {
        let plan = f.query.resolve();
        let mut avail = Availability::from_topology(&f.topology);
        let mut index = CandidateIndex::build(&f.topology, &f.space, 1_000, 1);
        let median = avail.median_capacity(&f.topology);
        let out = place_pair(
            &f.query,
            &plan.pairs[0],
            Coord::xy(7.0, 0.0),
            &mut index,
            &mut avail,
            median,
            cfg,
        );
        (out.replicas, avail)
    }

    #[test]
    fn unpartitioned_pair_fits_single_worker() {
        let f = fixture(&[100.0]);
        let cfg = PhaseThreeConfig {
            sigma: 1.0,
            ..Default::default()
        };
        let (reps, avail) = run(&f, &cfg);
        assert_eq!(reps.len(), 1);
        let rep = &reps[0];
        assert_eq!(rep.required_capacity(), 50.0);
        assert_eq!(rep.merged_replicas, 1);
        assert!(!rep.overflowed);
        assert_eq!(avail.get(rep.node), 50.0);
    }

    #[test]
    fn partitions_spill_across_workers_without_overload() {
        // Two workers of 40 each cannot host the whole 50-unit join, but
        // σ=0.4 partitions it into p_max = 10 chunks that spread across
        // both without overloading either (broadcasting partitions to a
        // second node duplicates some traffic — the bandwidth/overload
        // trade-off of §3.4).
        let f = fixture(&[40.0, 40.0]);
        let cfg = PhaseThreeConfig {
            sigma: 0.4,
            ..Default::default()
        };
        let (reps, avail) = run(&f, &cfg);
        assert!(reps.len() >= 2, "should use both workers: {reps:?}");
        for rep in &reps {
            assert!(!rep.overflowed);
            assert!(avail.get(rep.node) >= 0.0, "node {} overloaded", rep.node);
        }
        // Placed mass covers the join (≥ the unpartitioned requirement;
        // duplication from broadcasting may exceed it).
        let total: f64 = reps.iter().map(|r| r.required_capacity()).sum();
        assert!(total >= 50.0 - 1e-9, "placed {total}");
        // Every sub-replica of the 3×3 partition grid is hosted.
        let subs: u32 = reps.iter().map(|r| r.merged_replicas).sum();
        assert_eq!(subs, 9);
    }

    #[test]
    fn merged_accounting_reuses_partitions() {
        // σ=0 ⇒ 25×25 unit partitions; a single worker of capacity 50
        // can host ALL of them because merged accounting charges each
        // distinct partition once (total distinct = 25 + 25 = 50).
        let f = fixture(&[50.0]);
        let cfg = PhaseThreeConfig {
            sigma: 0.0,
            ..Default::default()
        };
        let (reps, avail) = run(&f, &cfg);
        assert_eq!(reps.len(), 1);
        assert_eq!(reps[0].merged_replicas, 625);
        assert_eq!(reps[0].required_capacity(), 50.0);
        assert!(!reps[0].overflowed);
        assert!(avail.get(reps[0].node).abs() < 1e-9);
    }

    #[test]
    fn overflow_distributes_evenly_when_capacity_missing() {
        // Total capacity 20 < required 50: even σ=0 partitioning cannot
        // fit; the fallback must still place everything, accepting
        // overload.
        let f = fixture(&[10.0, 10.0]);
        let cfg = PhaseThreeConfig {
            sigma: 1.0,
            overflow: OverflowPolicy::ExpandThenDistribute { max_expansions: 3 },
            ..Default::default()
        };
        let (reps, _) = run(&f, &cfg);
        let total: f64 = reps.iter().map(|r| r.required_capacity()).sum();
        assert!(
            (total - 50.0).abs() < 1e-9,
            "all load must be placed, got {total}"
        );
        assert!(reps.iter().any(|r| r.overflowed));
    }

    #[test]
    fn c_min_excludes_small_nodes() {
        // First worker has 12 < C_min = 15: must not be used even though
        // it is nearest.
        let f = fixture(&[12.0, 100.0]);
        let cfg = PhaseThreeConfig {
            c_min: 15.0,
            sigma: 1.0,
            ..Default::default()
        };
        let (reps, _) = run(&f, &cfg);
        assert_eq!(reps.len(), 1);
        assert_eq!(f.topology.node(reps[0].node).label, "w1");
    }

    #[test]
    fn paths_are_direct_legs() {
        let f = fixture(&[100.0]);
        let cfg = PhaseThreeConfig {
            sigma: 1.0,
            ..Default::default()
        };
        let (reps, _) = run(&f, &cfg);
        let rep = &reps[0];
        assert_eq!(rep.left_path.len(), 2);
        assert_eq!(rep.left_path[1], rep.node);
        assert_eq!(rep.out_path[0], rep.node);
        assert_eq!(*rep.out_path.last().unwrap(), f.query.sink);
    }

    #[test]
    fn availability_release_restores_capacity() {
        let f = fixture(&[100.0]);
        let mut avail = Availability::from_topology(&f.topology);
        let w = f.topology.by_label("w0").unwrap();
        avail.take(w, 60.0);
        assert_eq!(avail.get(w), 40.0);
        avail.release(w, 60.0);
        assert_eq!(avail.get(w), 100.0);
    }

    #[test]
    fn placement_collection_helpers() {
        let f = fixture(&[30.0, 30.0]);
        let cfg = PhaseThreeConfig::default();
        let (reps, _) = run(&f, &cfg);
        let mut p = Placement::new("test");
        p.replicas = reps;
        assert!(p.instance_count() >= 2);
        assert!(p.sub_replica_count() >= p.instance_count());
        let used = p.nodes_used();
        assert!(used.len() >= 2);
        let removed = p.remove_pair(PairId(0));
        assert!(!removed.is_empty());
        assert_eq!(p.instance_count(), 0);
    }
}
