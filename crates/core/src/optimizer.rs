//! The Nova optimizer — Algorithm 1 of the paper.
//!
//! Given a topology `G_T`, a logical plan (a [`JoinQuery`]) and the join
//! matrix, Nova produces an operator-to-node mapping for the parallelized
//! plan in three linear-time phases:
//!
//! 1. **Cost space construction** (§3.2): embed the topology into R^d via
//!    Vivaldi ([`nova_netcoord::Vivaldi`]); callers with precomputed
//!    coordinates can inject a [`CostSpace`] directly.
//! 2. **Virtual join placement** (§3.3): resolve the query into join
//!    pairs and place each at the geometric median of its pinned
//!    endpoints ([`crate::virtual_placement`]).
//! 3. **Physical replica assignment** (§3.4): bandwidth-aware
//!    partitioning, adaptive k-NN candidate selection and sequential
//!    placement under capacity constraints ([`crate::placement`]).
//!
//! The struct retains everything re-optimization (§3.5) needs — the cost
//! space, the candidate index, remaining capacities, virtual optima and
//! the current placement — so topology/workload changes touch only the
//! affected pairs (see [`crate::reopt`]).

use nova_geom::Coord;
use nova_netcoord::{CostSpace, Vivaldi, VivaldiConfig};
use nova_topology::{LatencyProvider, Topology};

use crate::candidates::CandidateIndex;
use crate::partitioning::sigma_for_bandwidth;
use crate::placement::{place_pair, Availability, OverflowPolicy, PhaseThreeConfig, Placement};
use crate::plan::{JoinQuery, ResolvedPlan};
use crate::virtual_placement;

/// Configuration of the full Nova pipeline.
#[derive(Debug, Clone, Copy)]
pub struct NovaConfig {
    /// Partitioning scale factor σ (paper default: 0.4, "a well-balanced
    /// trade-off across diverse workloads and topologies").
    pub sigma: f64,
    /// Availability threshold `C_min` (Eq. 3).
    pub c_min: f64,
    /// Lower bound for the adaptive k-NN k.
    pub k_min: usize,
    /// Overflow policy for replicas that fit no candidate.
    pub overflow: OverflowPolicy,
    /// Optional per-operator bandwidth budget `t_b`; when set, σ is
    /// derived per pair from Eq. 8 instead of the fixed `sigma`.
    pub bandwidth_budget: Option<f64>,
    /// Vivaldi settings for Phase I (when Nova builds the embedding).
    pub vivaldi: VivaldiConfig,
    /// Topology size up to which the exact k-d tree index is used;
    /// beyond it the approximate Annoy-style index takes over (§3.4).
    /// The default keeps the exact tree everywhere: in the 2-D cost
    /// space a k-d tree out-queries the random-projection forest at all
    /// the scales the paper evaluates (`benches/knn.rs` measures this);
    /// lower the threshold when embedding into higher-dimensional,
    /// multi-metric cost spaces (§3.6).
    pub exact_index_threshold: usize,
    /// Seed for index construction.
    pub seed: u64,
}

impl Default for NovaConfig {
    fn default() -> Self {
        NovaConfig {
            sigma: 0.4,
            c_min: 0.0,
            k_min: 2,
            overflow: OverflowPolicy::default(),
            bandwidth_budget: None,
            vivaldi: VivaldiConfig::default(),
            exact_index_threshold: 2_000_000,
            seed: 0x0a0b,
        }
    }
}

/// The Nova optimizer with retained state for incremental re-optimization.
pub struct Nova {
    pub(crate) topology: Topology,
    pub(crate) space: CostSpace,
    pub(crate) index: CandidateIndex,
    pub(crate) avail: Availability,
    pub(crate) median_capacity: f64,
    pub(crate) config: NovaConfig,
    /// State of the last `optimize` call.
    pub(crate) query: Option<JoinQuery>,
    pub(crate) plan: Option<ResolvedPlan>,
    /// Virtual position per pair (parallel to `plan.pairs`).
    pub(crate) optima: Vec<Coord>,
    /// Pairs deactivated by re-optimization (parallel to `plan.pairs`).
    pub(crate) pair_dead: Vec<bool>,
    pub(crate) placement: Placement,
}

impl Nova {
    /// Phase I included: embed the topology from latency measurements via
    /// Vivaldi and set up all Phase III state.
    pub fn from_provider(
        topology: Topology,
        provider: &impl LatencyProvider,
        config: NovaConfig,
    ) -> Self {
        assert_eq!(
            topology.len(),
            provider.len(),
            "provider must cover exactly the topology's nodes"
        );
        let vivaldi = Vivaldi::embed(provider, config.vivaldi);
        let space = vivaldi.into_cost_space();
        Self::build(topology, space, config)
    }

    /// Use an externally computed cost space (e.g. classical MDS for
    /// validation, or ground-truth coordinates in controlled tests).
    pub fn with_cost_space(topology: Topology, space: CostSpace, config: NovaConfig) -> Self {
        Self::build(topology, space, config)
    }

    fn build(topology: Topology, space: CostSpace, config: NovaConfig) -> Self {
        let index =
            CandidateIndex::build(&topology, &space, config.exact_index_threshold, config.seed);
        let avail = Availability::from_topology(&topology);
        let median_capacity = avail.median_capacity(&topology);
        Nova {
            topology,
            space,
            index,
            avail,
            median_capacity,
            config,
            query: None,
            plan: None,
            optima: Vec::new(),
            pair_dead: Vec::new(),
            placement: Placement::new("nova"),
        }
    }

    /// Algorithm 1: resolve, virtually place and physically assign the
    /// query. Returns a reference to the stored placement.
    pub fn optimize(&mut self, query: JoinQuery) -> &Placement {
        // Reset per-query state: fresh availability and a fresh candidate
        // index (a previous run may have evicted saturated nodes).
        self.avail = Availability::from_topology(&self.topology);
        self.index = CandidateIndex::build(
            &self.topology,
            &self.space,
            self.config.exact_index_threshold,
            self.config.seed,
        );
        // Pinned source operators consume their node's capacity for data
        // ingestion (Algorithm 1 line 7 places pinned operators first):
        // a source emitting r tuples/s has r less capacity available for
        // join replicas. This is what makes Nova prefer idle workers over
        // busy sensors — the paper's source-based baseline overloads
        // exactly because it ignores this (§4.7).
        for s in query.left.iter().chain(&query.right) {
            self.avail.take(s.node, s.rate);
            self.index.set_avail(s.node, self.avail.get(s.node));
        }
        self.median_capacity = self.avail.median_capacity(&self.topology);
        self.placement = Placement::new("nova");

        // resolve_operators (source expansion is the caller's query
        // construction; pair-wise replication happens here).
        let plan = query.resolve();
        // compute_optima: geometric median per pair.
        let optima = virtual_placement::compute_optima(&query, &plan, &self.space);

        // parallelize_and_place each non-pinned operator, heaviest pairs
        // first: big replicas claim still-fresh neighborhoods cheaply,
        // while later small pairs fit into the partial leftovers — the
        // decreasing-first-fit order that keeps candidate expansion (and
        // thus Phase III) effectively linear at scale.
        let cfg_template = self.phase_three_config();
        let mut order: Vec<usize> = (0..plan.pairs.len()).collect();
        order.sort_unstable_by(|&a, &b| {
            query
                .required_capacity(&plan.pairs[b])
                .total_cmp(&query.required_capacity(&plan.pairs[a]))
        });
        for idx in order {
            let pair = &plan.pairs[idx];
            let pos = &optima[idx];
            let cfg = self.pair_config(&query, pair, &cfg_template);
            let outcome = place_pair(
                &query,
                pair,
                *pos,
                &mut self.index,
                &mut self.avail,
                self.median_capacity,
                &cfg,
            );
            self.placement.replicas.extend(outcome.replicas);
        }

        self.pair_dead = vec![false; plan.pairs.len()];
        self.optima = optima;
        self.plan = Some(plan);
        self.query = Some(query);
        &self.placement
    }

    pub(crate) fn phase_three_config(&self) -> PhaseThreeConfig {
        PhaseThreeConfig {
            sigma: self.config.sigma,
            c_min: self.config.c_min,
            k_min: self.config.k_min,
            overflow: self.config.overflow,
        }
    }

    /// Per-pair Phase III config: σ from the bandwidth budget (Eq. 8)
    /// when one is set.
    pub(crate) fn pair_config(
        &self,
        query: &JoinQuery,
        pair: &crate::types::JoinPair,
        template: &PhaseThreeConfig,
    ) -> PhaseThreeConfig {
        let mut cfg = *template;
        if let Some(tb) = self.config.bandwidth_budget {
            let l = query.left_stream(pair).rate;
            let r = query.right_stream(pair).rate;
            cfg.sigma = sigma_for_bandwidth(l, r, tb);
        }
        cfg
    }

    /// The current placement.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The topology as the optimizer currently sees it.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The cost space (estimated latencies).
    pub fn cost_space(&self) -> &CostSpace {
        &self.space
    }

    /// The query of the last `optimize` call, if any.
    pub fn query(&self) -> Option<&JoinQuery> {
        self.query.as_ref()
    }

    /// Virtual optima per pair (parallel to the resolved plan).
    pub fn optima(&self) -> &[Coord] {
        &self.optima
    }

    /// Remaining capacity tracker.
    pub fn availability(&self) -> &Availability {
        &self.avail
    }

    /// Verify internal bookkeeping: every node's tracked availability
    /// must equal its capacity minus pinned ingestion minus the load of
    /// the replicas currently placed on it, and every live pair must
    /// have at least one replica. Used by integration tests after
    /// re-optimization batteries.
    pub fn validate_accounting(&self) -> Result<(), String> {
        let query = self.query.as_ref().ok_or("no active query")?;
        let plan = self.plan.as_ref().ok_or("no plan")?;
        // Expected availability per node.
        let mut expected: Vec<f64> = self.topology.nodes().iter().map(|n| n.capacity).collect();
        for s in query.left.iter().chain(&query.right) {
            expected[s.node.idx()] -= s.rate;
        }
        for rep in &self.placement.replicas {
            expected[rep.node.idx()] -= rep.required_capacity();
        }
        for (i, want) in expected.iter().enumerate() {
            let node = nova_topology::NodeId(i as u32);
            // Removed nodes are force-zeroed; skip them.
            if self.topology.node(node).capacity == 0.0 {
                continue;
            }
            let got = self.avail.get(node);
            if (got - want).abs() > 1e-6 * want.abs().max(1.0) {
                return Err(format!(
                    "node {node} availability drifted: tracked {got}, recomputed {want}"
                ));
            }
        }
        // Every live pair is placed.
        for pair in &plan.pairs {
            if self.pair_dead[pair.id.idx()] {
                continue;
            }
            if !self.placement.replicas.iter().any(|r| r.pair == pair.id) {
                return Err(format!("live pair {} has no replicas", pair.id));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{evaluate, EvalOptions};
    use crate::types::StreamSpec;
    use nova_topology::{running_example, LatencyProvider, NodeRole};

    fn running_example_nova() -> (Nova, JoinQuery) {
        let ex = running_example();
        // Ground-truth-quality cost space from classical MDS over the
        // measured matrix, so the test exercises placement rather than
        // embedding noise.
        let coords = nova_netcoord::classical_mds(ex.rtt.dense(), 2, 7);
        let space = CostSpace::new(coords);
        let query = JoinQuery::by_key(
            ex.pressure
                .iter()
                .map(|&id| {
                    let region = ex.topology.node(id).region.unwrap();
                    StreamSpec::keyed(id, 25.0, region)
                })
                .collect(),
            ex.humidity
                .iter()
                .map(|&id| {
                    let region = ex.topology.node(id).region.unwrap();
                    StreamSpec::keyed(id, 25.0, region)
                })
                .collect(),
            ex.sink,
        );
        let config = NovaConfig {
            c_min: 15.0,
            sigma: 0.4,
            ..Default::default()
        };
        (
            Nova::with_cost_space(ex.topology.clone(), space, config),
            query,
        )
    }

    #[test]
    fn running_example_produces_four_pairs_with_no_overload() {
        let (mut nova, query) = running_example_nova();
        let ex = running_example();
        nova.optimize(query);
        let placement = nova.placement().clone();
        // All four region sub-joins must be placed.
        let pairs: std::collections::HashSet<_> =
            placement.replicas.iter().map(|r| r.pair).collect();
        assert_eq!(pairs.len(), 4);
        // Evaluate under real latencies: no overload.
        let e = evaluate(
            &placement,
            nova.topology(),
            |a, b| ex.rtt.rtt(a, b),
            EvalOptions::default(),
        );
        assert_eq!(e.overloaded_nodes, 0, "loads: {:?}", e.node_loads);
    }

    #[test]
    fn running_example_beats_cloud_placement() {
        let (mut nova, query) = running_example_nova();
        let ex = running_example();
        nova.optimize(query.clone());
        let nova_eval = evaluate(
            nova.placement(),
            nova.topology(),
            |a, b| ex.rtt.rtt(a, b),
            EvalOptions::default(),
        );
        // Cloud baseline: everything on E.
        let e_node = ex.topology.by_label("E").unwrap();
        let mut cloud = Placement::new("cloud");
        let plan = query.resolve();
        for pair in &plan.pairs {
            cloud.replicas.push(crate::placement::PlacedReplica {
                pair: pair.id,
                node: e_node,
                left_rate: 25.0,
                right_rate: 25.0,
                left_partitions: vec![0],
                right_partitions: vec![0],
                merged_replicas: 1,
                left_path: vec![query.left_stream(pair).node, e_node],
                right_path: vec![query.right_stream(pair).node, e_node],
                out_path: vec![e_node, query.sink],
                output_rate: 50.0,
                overflowed: false,
            });
        }
        let cloud_eval = evaluate(
            &cloud,
            nova.topology(),
            |a, b| ex.rtt.rtt(a, b),
            EvalOptions::default(),
        );
        assert!(
            nova_eval.max_latency() < cloud_eval.max_latency(),
            "nova {} vs cloud {}",
            nova_eval.max_latency(),
            cloud_eval.max_latency()
        );
    }

    #[test]
    fn base_stations_never_host_replicas() {
        let (mut nova, query) = running_example_nova();
        nova.optimize(query);
        for rep in &nova.placement().replicas {
            let label = &nova.topology().node(rep.node).label;
            assert!(!label.starts_with("BS"), "replica on base station {label}");
        }
    }

    #[test]
    fn optimize_via_vivaldi_embedding_works_end_to_end() {
        let ex = running_example();
        let query = JoinQuery::by_key(
            ex.pressure
                .iter()
                .map(|&id| StreamSpec::keyed(id, 25.0, ex.topology.node(id).region.unwrap()))
                .collect(),
            ex.humidity
                .iter()
                .map(|&id| StreamSpec::keyed(id, 25.0, ex.topology.node(id).region.unwrap()))
                .collect(),
            ex.sink,
        );
        let mut nova = Nova::from_provider(
            ex.topology.clone(),
            ex.rtt.dense(),
            NovaConfig {
                c_min: 15.0,
                ..Default::default()
            },
        );
        nova.optimize(query);
        assert!(!nova.placement().replicas.is_empty());
        // Sources and sinks keep their roles; placement targets must be
        // workers with nonzero capacity.
        for rep in &nova.placement().replicas {
            let node = nova.topology().node(rep.node);
            assert!(node.capacity > 0.0);
            assert_ne!(node.role, NodeRole::Sink);
        }
    }

    #[test]
    fn bandwidth_budget_derives_sigma() {
        let (nova, query) = running_example_nova();
        let mut cfg = nova.config;
        cfg.bandwidth_budget = Some(250.0);
        let template = nova.phase_three_config();
        let plan = query.resolve();
        let pair_cfg = Nova {
            config: cfg,
            ..nova
        }
        .pair_config(&query, &plan.pairs[0], &template);
        // Eq. 8: σ = 250 / (2·25·25) = 0.2.
        assert!((pair_cfg.sigma - 0.2).abs() < 1e-12);
    }
}
