//! Bandwidth-aware stream partitioning (paper §3.4, Eq. 7–8).
//!
//! Phase III decomposes a join's left and right input streams into
//! disjoint partitions so every replica satisfies the capacity constraint
//! (Eq. 2) without blowing up network traffic: partitioning into `m × n`
//! replicas broadcasts each left partition to `n` replicas and vice
//! versa, so maximum partitioning multiplies transfer volume (the paper's
//! example: 50 → 1250 tuples/s).
//!
//! The scaling factor σ ∈ [0, 1] controls the trade-off through the
//! maximum partition load
//!
//! ```text
//! p_max(s, t) = max(1, σ · 0.5 · (dr(s) + dr(t)))        (Eq. 7)
//! ```
//!
//! The joint weighting (0.5 of the *combined* rate, rather than
//! partitioning each stream independently by σ) keeps skewed pairs from
//! over-partitioning the small side — the paper's worked example reduces
//! per-replica demand from 6 to ≤5 while cutting transfer from 24 to 18
//! tuples/s. σ can be derived from a bandwidth budget `t_b` by Eq. 8.

use serde::{Deserialize, Serialize};

/// The partitioning decision for one join pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionedJoin {
    /// Rates of the left partitions (sums to `dr(s)`).
    pub left: Vec<f64>,
    /// Rates of the right partitions (sums to `dr(t)`).
    pub right: Vec<f64>,
    /// The `p_max` threshold applied.
    pub p_max: f64,
}

impl PartitionedJoin {
    /// Decompose the pair `(dr_s, dr_t)` under scaling factor `sigma`.
    ///
    /// Each stream is split into equal-ish partitions of at most `p_max`
    /// (full partitions plus one remainder, exactly as the paper's
    /// example: rate 10 with p_max 3 → {3, 3, 3, 1}).
    pub fn decompose(dr_s: f64, dr_t: f64, sigma: f64) -> PartitionedJoin {
        assert!((0.0..=1.0).contains(&sigma), "sigma {sigma} outside [0, 1]");
        assert!(dr_s >= 0.0 && dr_t >= 0.0, "negative data rate");
        let p_max = p_max(dr_s, dr_t, sigma);
        PartitionedJoin {
            left: partition_rates(dr_s, p_max),
            right: partition_rates(dr_t, p_max),
            p_max,
        }
    }

    /// Number of replicas: every left partition joins every right
    /// partition (`m × n`).
    pub fn replica_count(&self) -> usize {
        self.left.len() * self.right.len()
    }

    /// Required capacity of replica `(i, j)`:
    /// `C_r(ω'_ij) = dr(l'_i) + dr(r'_j)`.
    pub fn replica_capacity(&self, i: usize, j: usize) -> f64 {
        self.left[i] + self.right[j]
    }

    /// The largest per-replica capacity requirement.
    pub fn max_replica_capacity(&self) -> f64 {
        let lmax = self.left.iter().copied().fold(0.0, f64::max);
        let rmax = self.right.iter().copied().fold(0.0, f64::max);
        lmax + rmax
    }

    /// Total network transfer in tuples/s: each left partition is sent to
    /// `n` replicas (broadcast across the right partitions) and each right
    /// partition to `m` replicas.
    pub fn total_transfer(&self) -> f64 {
        let m = self.left.len() as f64;
        let n = self.right.len() as f64;
        let left_sum: f64 = self.left.iter().sum();
        let right_sum: f64 = self.right.iter().sum();
        left_sum * n + right_sum * m
    }

    /// Iterate over all replicas as `(left index, right index, C_r)`.
    pub fn replicas(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.left.len()).flat_map(move |i| {
            (0..self.right.len()).map(move |j| (i, j, self.replica_capacity(i, j)))
        })
    }
}

/// Maximum partition load threshold (Eq. 7):
/// `p_max(s, t) = max(1, σ · 0.5 · (dr(s) + dr(t)))`.
pub fn p_max(dr_s: f64, dr_t: f64, sigma: f64) -> f64 {
    (sigma * 0.5 * (dr_s + dr_t)).max(1.0)
}

/// Split a stream of rate `rate` into partitions of at most `p_max`
/// tuples/s: `⌊rate / p_max⌋` full partitions plus a remainder.
pub fn partition_rates(rate: f64, p_max: f64) -> Vec<f64> {
    assert!(p_max >= 1.0, "p_max must be at least 1");
    if rate <= 0.0 {
        return Vec::new();
    }
    if rate <= p_max {
        return vec![rate];
    }
    let full = (rate / p_max).floor() as usize;
    let remainder = rate - full as f64 * p_max;
    let mut out = Vec::with_capacity(full + 1);
    out.extend(std::iter::repeat_n(p_max, full));
    if remainder > 1e-9 {
        out.push(remainder);
    }
    out
}

/// Derive σ from a per-operator bandwidth budget `t_b` (Eq. 8):
/// `argmin_{σ ∈ [0,1]} (σ · 2 · dr(s) · dr(t) − t_b)²`, whose closed form
/// is `clamp(t_b / (2 · dr(s) · dr(t)), 0, 1)`.
pub fn sigma_for_bandwidth(dr_s: f64, dr_t: f64, t_b: f64) -> f64 {
    let denom = 2.0 * dr_s * dr_t;
    if denom <= 0.0 {
        return 1.0; // no traffic: no reason to partition
    }
    (t_b / denom).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_example_joint_weighting() {
        // §3.4: dr(s)=2, dr(t)=10, σ=0.5 ⇒ p_max = max(1, 0.5·0.5·12) = 3,
        // s stays whole, t → {3,3,3,1}; replicas need ≤5; transfer = 18.
        let pj = PartitionedJoin::decompose(2.0, 10.0, 0.5);
        assert_eq!(pj.p_max, 3.0);
        assert_eq!(pj.left, vec![2.0]);
        assert_eq!(pj.right, vec![3.0, 3.0, 3.0, 1.0]);
        assert_eq!(pj.replica_count(), 4);
        assert_eq!(pj.replica_capacity(0, 0), 5.0);
        assert_eq!(pj.replica_capacity(0, 3), 3.0);
        assert_eq!(pj.max_replica_capacity(), 5.0);
        assert_eq!(pj.total_transfer(), 18.0);
    }

    #[test]
    fn paper_max_partitioning_example() {
        // §3.4: dr=25/25 with σ=0 ⇒ p_max=1 ⇒ 25×25 = 625 replicas with
        // C_r = 2 each and total transfer 1250 tuples/s.
        let pj = PartitionedJoin::decompose(25.0, 25.0, 0.0);
        assert_eq!(pj.p_max, 1.0);
        assert_eq!(pj.replica_count(), 625);
        assert_eq!(pj.replica_capacity(0, 0), 2.0);
        assert_eq!(pj.total_transfer(), 1250.0);
    }

    #[test]
    fn sigma_one_never_partitions() {
        let pj = PartitionedJoin::decompose(25.0, 25.0, 1.0);
        assert_eq!(pj.replica_count(), 1);
        assert_eq!(pj.replica_capacity(0, 0), 50.0);
        assert_eq!(pj.total_transfer(), 50.0);
    }

    #[test]
    fn partitions_conserve_rate() {
        for (rate, p_max) in [
            (10.0, 3.0),
            (7.5, 2.5),
            (100.0, 7.0),
            (1.0, 1.0),
            (0.3, 1.0),
        ] {
            let parts = partition_rates(rate, p_max);
            let sum: f64 = parts.iter().sum();
            assert!(
                (sum - rate).abs() < 1e-9,
                "rate {rate} p_max {p_max}: {parts:?}"
            );
            for p in &parts {
                assert!(*p <= p_max + 1e-9);
                assert!(*p > 0.0);
            }
        }
    }

    #[test]
    fn zero_rate_stream_has_no_partitions() {
        assert!(partition_rates(0.0, 5.0).is_empty());
        let pj = PartitionedJoin::decompose(0.0, 10.0, 0.5);
        assert_eq!(pj.replica_count(), 0);
    }

    #[test]
    fn smaller_sigma_means_more_partitions_and_more_traffic() {
        let coarse = PartitionedJoin::decompose(40.0, 40.0, 0.8);
        let fine = PartitionedJoin::decompose(40.0, 40.0, 0.1);
        assert!(fine.replica_count() > coarse.replica_count());
        assert!(fine.total_transfer() > coarse.total_transfer());
        assert!(fine.max_replica_capacity() < coarse.max_replica_capacity());
    }

    #[test]
    fn sigma_for_bandwidth_closed_form() {
        // Unconstrained: budget above 2·dr(s)·dr(t) clamps to 1.
        assert_eq!(sigma_for_bandwidth(5.0, 5.0, 1000.0), 1.0);
        // Exact: t_b = 2·10·10·0.25 ⇒ σ = 0.25.
        assert!((sigma_for_bandwidth(10.0, 10.0, 50.0) - 0.25).abs() < 1e-12);
        // Zero rates: no partitioning pressure.
        assert_eq!(sigma_for_bandwidth(0.0, 10.0, 5.0), 1.0);
    }

    #[test]
    fn replicas_iterator_matches_counts() {
        let pj = PartitionedJoin::decompose(6.0, 4.0, 0.5);
        let v: Vec<_> = pj.replicas().collect();
        assert_eq!(v.len(), pj.replica_count());
        for (i, j, c) in v {
            assert!((c - pj.replica_capacity(i, j)).abs() < 1e-12);
        }
    }

    #[test]
    fn joint_weighting_beats_independent_partitioning() {
        // The paper's motivation: independent partitioning of s and t by σ
        // yields higher per-replica demand and more traffic than the joint
        // p_max. Reproduce the §3.4 numbers.
        let dr_s = 2.0;
        let dr_t = 10.0;
        // Independent: split each stream into 1/σ = 2 partitions.
        let ind_left = [1.0, 1.0];
        let ind_right = [5.0, 5.0];
        let ind_cap = 1.0 + 5.0;
        let ind_transfer = ind_left.iter().sum::<f64>() * 2.0 + ind_right.iter().sum::<f64>() * 2.0;
        assert_eq!(ind_cap, 6.0);
        assert_eq!(ind_transfer, 24.0);
        let joint = PartitionedJoin::decompose(dr_s, dr_t, 0.5);
        assert!(joint.max_replica_capacity() < ind_cap);
        assert!(joint.total_transfer() < ind_transfer);
    }
}
