//! Tree placement: the WSN multi-hop join baseline (§4.1, \[49\]).
//!
//! Builds a minimum spanning tree over the (estimated) latency graph of
//! the whole topology, roots it at the sink, and executes each join where
//! the two input streams' routes towards the sink intersect — their
//! lowest common ancestor. Data travels hop-by-hop along tree edges, so
//! every intermediate node pays forwarding cost; this is why the method
//! both overloads heavily (Fig. 6) and accumulates large multi-hop
//! latencies that the cost space underestimates (Fig. 8).

use nova_topology::{minimum_spanning_tree, LatencyProvider, NodeId, RootedTree, Topology};

use crate::placement::{PlacedReplica, Placement};
use crate::plan::{JoinQuery, ResolvedPlan};

/// Place joins at MST path intersections.
///
/// `estimate` provides the pairwise latencies the MST is built from —
/// pass the cost space for a fair comparison with Nova (all optimizers
/// see estimated latencies; evaluation may then use real ones).
pub fn tree_based(
    query: &JoinQuery,
    plan: &ResolvedPlan,
    topology: &Topology,
    estimate: &impl LatencyProvider,
) -> Placement {
    let members: Vec<NodeId> = topology.nodes().iter().map(|n| n.id).collect();
    let edges = minimum_spanning_tree(&members, estimate);
    let tree = RootedTree::from_edges(query.sink, &edges);
    placement_on_tree(query, plan, &tree, "tree")
}

/// Shared by Tree and Cl-Tree-SF: place each pair at the LCA of its two
/// anchor nodes and record the full tree routes.
pub(crate) fn placement_on_tree(
    query: &JoinQuery,
    plan: &ResolvedPlan,
    tree: &RootedTree,
    label: &str,
) -> Placement {
    let mut placement = Placement::new(label);
    placement.replicas.reserve(plan.len());
    for pair in &plan.pairs {
        let left = query.left_stream(pair);
        let right = query.right_stream(pair);
        let join_node = tree.lca(left.node, right.node);
        placement.replicas.push(PlacedReplica {
            pair: pair.id,
            node: join_node,
            left_rate: left.rate,
            right_rate: right.rate,
            left_partitions: vec![0],
            right_partitions: vec![0],
            merged_replicas: 1,
            left_path: tree.path_to_ancestor(left.node, join_node),
            right_path: tree.path_to_ancestor(right.node, join_node),
            out_path: tree.path_to_ancestor(join_node, tree.root()),
            output_rate: query.output_rate(pair),
            overflowed: false,
        });
    }
    placement
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::StreamSpec;
    use nova_topology::{DenseRtt, NodeRole};

    /// Line topology 0-1-2-3-4 with the sink at node 2: streams from 0
    /// and 4 meet exactly at the sink; streams from 0 and 1 meet at 1.
    fn line_world() -> (Topology, DenseRtt) {
        let mut t = Topology::new();
        for i in 0..5 {
            let role = match i {
                0 | 1 | 4 => NodeRole::Source,
                2 => NodeRole::Sink,
                _ => NodeRole::Worker,
            };
            t.add_node(role, 10.0, format!("n{i}"));
        }
        let rtt = DenseRtt::from_fn(5, |i, j| (i as f64 - j as f64).abs());
        (t, rtt)
    }

    #[test]
    fn join_happens_at_path_intersection() {
        let (t, rtt) = line_world();
        let q = JoinQuery::by_key(
            vec![StreamSpec::keyed(NodeId(0), 5.0, 1)],
            vec![StreamSpec::keyed(NodeId(1), 5.0, 1)],
            NodeId(2),
        );
        let plan = q.resolve();
        let p = tree_based(&q, &plan, &t, &rtt);
        // Paths to the sink: 0→1→2 and 1→2 intersect at node 1.
        assert_eq!(p.replicas[0].node, NodeId(1));
        assert_eq!(p.replicas[0].left_path, vec![NodeId(0), NodeId(1)]);
        assert_eq!(p.replicas[0].right_path, vec![NodeId(1)]);
        assert_eq!(p.replicas[0].out_path, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn opposite_sides_meet_at_the_sink() {
        let (t, rtt) = line_world();
        let q = JoinQuery::by_key(
            vec![StreamSpec::keyed(NodeId(0), 5.0, 1)],
            vec![StreamSpec::keyed(NodeId(4), 5.0, 1)],
            NodeId(2),
        );
        let plan = q.resolve();
        let p = tree_based(&q, &plan, &t, &rtt);
        assert_eq!(p.replicas[0].node, NodeId(2));
        // Multi-hop route from node 4: 4→3→2.
        assert_eq!(
            p.replicas[0].right_path,
            vec![NodeId(4), NodeId(3), NodeId(2)]
        );
    }

    #[test]
    fn multi_hop_latency_accumulates() {
        let (t, rtt) = line_world();
        let q = JoinQuery::by_key(
            vec![StreamSpec::keyed(NodeId(0), 5.0, 1)],
            vec![StreamSpec::keyed(NodeId(4), 5.0, 1)],
            NodeId(2),
        );
        let plan = q.resolve();
        let p = tree_based(&q, &plan, &t, &rtt);
        let e = crate::eval::evaluate(
            &p,
            &t,
            |a, b| rtt.rtt(a, b),
            crate::eval::EvalOptions::default(),
        );
        // Left path 0→1→2 = 2 ms; right path 4→3→2 = 2 ms; out = 0.
        assert_eq!(e.max_latency(), 2.0);
        // Relays 1 and 3 carry forwarded traffic.
        assert!(e.node_loads.contains_key(&NodeId(1)));
        assert!(e.node_loads.contains_key(&NodeId(3)));
    }
}
