//! Top-c placement: resource-aware cloud-style heuristic (§4.1).
//!
//! Represents cloud-centric systems: each join goes to the node with the
//! highest *remaining* computational capacity. It is the only
//! resource-aware baseline and accordingly the best-performing one in
//! the overload study — but it lacks distributed parallelization, so a
//! single large sub-join can still overwhelm even the biggest node
//! (6–14 % overload in Fig. 6), and the chosen node is often far from
//! the sources (high latency in Fig. 7).

use nova_topology::{NodeRole, Topology};

use crate::placement::{Availability, Placement};
use crate::plan::{JoinQuery, ResolvedPlan};

use super::whole_pair_replica;

/// Place each pair on the node with the maximum remaining capacity,
/// decrementing as it goes. Overload is accepted when even the largest
/// node cannot fit a pair.
pub fn top_c(query: &JoinQuery, plan: &ResolvedPlan, topology: &Topology) -> Placement {
    let mut placement = Placement::new("top-c");
    let mut avail = Availability::from_topology(topology);
    // Process the heaviest pairs first — the natural greedy for a
    // capacity-driven heuristic.
    let mut order: Vec<usize> = (0..plan.len()).collect();
    order.sort_unstable_by(|&a, &b| {
        query
            .required_capacity(&plan.pairs[b])
            .total_cmp(&query.required_capacity(&plan.pairs[a]))
    });
    for idx in order {
        let pair = &plan.pairs[idx];
        // Highest remaining capacity among non-sink nodes.
        let best = topology
            .nodes()
            .iter()
            .filter(|n| n.role != NodeRole::Sink && n.capacity > 0.0)
            .max_by(|a, b| avail.get(a.id).total_cmp(&avail.get(b.id)));
        let Some(node) = best else {
            // Degenerate topology: everything on the sink.
            placement
                .replicas
                .push(whole_pair_replica(query, pair, query.sink));
            continue;
        };
        avail.take(node.id, query.required_capacity(pair));
        placement
            .replicas
            .push(whole_pair_replica(query, pair, node.id));
    }
    // Restore plan order for deterministic downstream processing.
    placement.replicas.sort_unstable_by_key(|r| r.pair);
    placement
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::StreamSpec;
    use nova_topology::NodeId;

    fn topo(caps: &[f64]) -> Topology {
        let mut t = Topology::new();
        t.add_node(NodeRole::Source, 1.0, "l");
        t.add_node(NodeRole::Source, 1.0, "r");
        t.add_node(NodeRole::Sink, 1.0, "sink");
        for (i, c) in caps.iter().enumerate() {
            t.add_node(NodeRole::Worker, *c, format!("w{i}"));
        }
        t
    }

    fn query() -> JoinQuery {
        JoinQuery::by_key(
            vec![StreamSpec::keyed(NodeId(0), 30.0, 1)],
            vec![StreamSpec::keyed(NodeId(1), 30.0, 1)],
            NodeId(2),
        )
    }

    #[test]
    fn picks_highest_capacity_node() {
        let t = topo(&[10.0, 500.0, 50.0]);
        let q = query();
        let plan = q.resolve();
        let p = top_c(&q, &plan, &t);
        assert_eq!(t.node(p.replicas[0].node).label, "w1");
    }

    #[test]
    fn capacity_is_consumed_across_pairs() {
        let t = topo(&[100.0, 90.0]);
        // Two independent pairs of 60 each: first goes to w0 (100), which
        // drops to 40, so the second goes to w1 (90).
        let q = JoinQuery::by_key(
            vec![
                StreamSpec::keyed(NodeId(0), 30.0, 1),
                StreamSpec::keyed(NodeId(0), 30.0, 2),
            ],
            vec![
                StreamSpec::keyed(NodeId(1), 30.0, 1),
                StreamSpec::keyed(NodeId(1), 30.0, 2),
            ],
            NodeId(2),
        );
        let plan = q.resolve();
        let p = top_c(&q, &plan, &t);
        let nodes: Vec<&str> = p
            .replicas
            .iter()
            .map(|r| t.node(r.node).label.as_str())
            .collect();
        assert!(nodes.contains(&"w0") && nodes.contains(&"w1"), "{nodes:?}");
    }

    #[test]
    fn sources_can_be_chosen_but_sink_never() {
        let t = topo(&[]);
        let q = query();
        let plan = q.resolve();
        let p = top_c(&q, &plan, &t);
        assert_ne!(
            p.replicas[0].node,
            NodeId(2),
            "sink must not host top-c joins"
        );
    }
}
