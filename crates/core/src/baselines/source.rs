//! Source-based placement: locality-aware heuristic (§4.1, \[67\]).
//!
//! Resolves the join matrix by placing each join at the *source with the
//! higher data rate*, so the heavier stream never travels. Distributes
//! load across more nodes than the sink strategy, but remains
//! resource-agnostic: sources are typically tiny edge devices that also
//! pay for data ingestion, so ~half of them overload (Fig. 6).

use crate::placement::Placement;
use crate::plan::{JoinQuery, ResolvedPlan};

use super::whole_pair_replica;

/// Place every pair on its higher-rate source (ties go left).
pub fn source_based(query: &JoinQuery, plan: &ResolvedPlan) -> Placement {
    let mut placement = Placement::new("source");
    placement.replicas.reserve(plan.len());
    for pair in &plan.pairs {
        let left = query.left_stream(pair);
        let right = query.right_stream(pair);
        let node = if left.rate >= right.rate {
            left.node
        } else {
            right.node
        };
        placement
            .replicas
            .push(whole_pair_replica(query, pair, node));
    }
    placement
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::StreamSpec;
    use nova_topology::NodeId;

    #[test]
    fn higher_rate_source_hosts_the_join() {
        let q = JoinQuery::by_key(
            vec![
                StreamSpec::keyed(NodeId(0), 5.0, 1),
                StreamSpec::keyed(NodeId(1), 50.0, 2),
            ],
            vec![
                StreamSpec::keyed(NodeId(2), 10.0, 1),
                StreamSpec::keyed(NodeId(3), 10.0, 2),
            ],
            NodeId(4),
        );
        let plan = q.resolve();
        let p = source_based(&q, &plan);
        // Pair (0,0): right rate 10 > left 5 ⇒ node 2.
        assert_eq!(p.replicas[0].node, NodeId(2));
        // Pair (1,1): left rate 50 > right 10 ⇒ node 1.
        assert_eq!(p.replicas[1].node, NodeId(1));
        // The local stream's path is trivial, the remote one has a hop.
        assert_eq!(p.replicas[1].left_path, vec![NodeId(1)]);
        assert_eq!(p.replicas[1].right_path, vec![NodeId(3), NodeId(1)]);
    }

    #[test]
    fn ties_prefer_the_left_source() {
        let q = JoinQuery::by_key(
            vec![StreamSpec::keyed(NodeId(0), 10.0, 1)],
            vec![StreamSpec::keyed(NodeId(1), 10.0, 1)],
            NodeId(2),
        );
        let plan = q.resolve();
        let p = source_based(&q, &plan);
        assert_eq!(p.replicas[0].node, NodeId(0));
    }
}
