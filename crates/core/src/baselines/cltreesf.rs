//! Cl-Tree-SF placement: the hybrid WSN baseline (§4.1).
//!
//! Clusters the topology like Cl-SF, then forms a minimum spanning tree
//! among the cluster heads (plus the sink) and computes joins at the
//! intersection of the heads' tree routes towards the sink. Streams
//! travel source → own cluster head → along the head-MST to the join
//! head → along the head-MST to the sink. The double indirection
//! (cluster hop + multi-hop head overlay) makes this the worst
//! overloader in the paper's Fig. 6 (94–99 %) and among the slowest in
//! Fig. 7.

use nova_netcoord::CostSpace;
use nova_topology::{minimum_spanning_tree, LatencyProvider, NodeId, RootedTree, Topology};

use crate::placement::{PlacedReplica, Placement};
use crate::plan::{JoinQuery, ResolvedPlan};

use super::clsf::cluster_topology;
use super::clustering::ClusterParams;

/// Cluster, build a head MST, join at head-route intersections.
pub fn cl_tree_sf(
    query: &JoinQuery,
    plan: &ResolvedPlan,
    topology: &Topology,
    space: &CostSpace,
    estimate: &impl LatencyProvider,
    params: &ClusterParams,
) -> Placement {
    let clustering = cluster_topology(topology, space, params);
    // Head overlay: all distinct heads plus the sink.
    let mut members: Vec<NodeId> = clustering.heads.clone();
    members.push(query.sink);
    members.sort_unstable();
    members.dedup();
    let edges = minimum_spanning_tree(&members, estimate);
    let tree = RootedTree::from_edges(query.sink, &edges);

    let mut placement = Placement::new("cl-tree-sf");
    placement.replicas.reserve(plan.len());
    for pair in &plan.pairs {
        let left = query.left_stream(pair);
        let right = query.right_stream(pair);
        let lh = clustering.head_of(left.node).unwrap_or(query.sink);
        let rh = clustering.head_of(right.node).unwrap_or(query.sink);
        let join_node = tree.lca(lh, rh);
        placement.replicas.push(PlacedReplica {
            pair: pair.id,
            node: join_node,
            left_rate: left.rate,
            right_rate: right.rate,
            left_partitions: vec![0],
            right_partitions: vec![0],
            merged_replicas: 1,
            left_path: prepend(left.node, tree.path_to_ancestor(lh, join_node)),
            right_path: prepend(right.node, tree.path_to_ancestor(rh, join_node)),
            out_path: tree.path_to_ancestor(join_node, tree.root()),
            output_rate: query.output_rate(pair),
            overflowed: false,
        });
    }
    placement
}

/// Prepend the source hop onto the head-overlay route, dropping the
/// duplicate when the source *is* the first head.
fn prepend(src: NodeId, mut overlay: Vec<NodeId>) -> Vec<NodeId> {
    if overlay.first() == Some(&src) {
        return overlay;
    }
    let mut path = Vec::with_capacity(overlay.len() + 1);
    path.push(src);
    path.append(&mut overlay);
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::StreamSpec;
    use nova_geom::Coord;
    use nova_topology::{DenseRtt, NodeRole};

    /// Three regions on a line; sink at the center region.
    fn world() -> (Topology, CostSpace, DenseRtt) {
        let mut t = Topology::new();
        let mut coords = Vec::new();
        t.add_node(NodeRole::Sink, 10.0, "sink");
        coords.push(Coord::xy(50.0, 0.0));
        for (region, base) in [(0, 0.0), (1, 50.0), (2, 100.0)] {
            for i in 0..4 {
                let role = if i < 2 {
                    NodeRole::Source
                } else {
                    NodeRole::Worker
                };
                t.add_node(role, 10.0, format!("r{region}n{i}"));
                coords.push(Coord::xy(base + i as f64, 1.0));
            }
        }
        let rtt = DenseRtt::from_fn(coords.len(), |i, j| coords[i].dist(&coords[j]).max(0.01));
        (t, CostSpace::new(coords), rtt)
    }

    #[test]
    fn routes_go_via_cluster_heads() {
        let (t, s, rtt) = world();
        // Join between region 0 (node 1) and region 2 (node 9).
        let q = JoinQuery::by_key(
            vec![StreamSpec::keyed(NodeId(1), 5.0, 1)],
            vec![StreamSpec::keyed(NodeId(9), 5.0, 1)],
            NodeId(0),
        );
        let plan = q.resolve();
        let params = ClusterParams {
            clusters: 3,
            ..ClusterParams::for_size(13)
        };
        let p = cl_tree_sf(&q, &plan, &t, &s, &rtt, &params);
        let rep = &p.replicas[0];
        // Left path starts at the source and passes through at least one
        // head before the join node.
        assert_eq!(rep.left_path.first(), Some(&NodeId(1)));
        assert_eq!(rep.left_path.last(), Some(&rep.node));
        // Output ends at the sink.
        assert_eq!(rep.out_path.last(), Some(&NodeId(0)));
        // Multi-hop structure: total path longer than a direct leg.
        assert!(rep.left_path.len() >= 2);
    }

    #[test]
    fn same_cluster_pair_joins_at_its_head() {
        let (t, s, rtt) = world();
        let q = JoinQuery::by_key(
            vec![StreamSpec::keyed(NodeId(1), 5.0, 1)],
            vec![StreamSpec::keyed(NodeId(2), 5.0, 1)],
            NodeId(0),
        );
        let plan = q.resolve();
        let params = ClusterParams {
            clusters: 3,
            ..ClusterParams::for_size(13)
        };
        let p = cl_tree_sf(&q, &plan, &t, &s, &rtt, &params);
        let rep = &p.replicas[0];
        // Both sources sit in region 0, so the join node is their common
        // head — a region-0 node.
        assert!(
            t.node(rep.node).label.starts_with("r0") || rep.node == NodeId(0),
            "join at {}",
            t.node(rep.node).label
        );
    }
}
