//! Cl-SF placement: the clustered WSN baseline (§4.1, \[64\]).
//!
//! Clusters the topology (fuzzy c-means in the cost space, the LEACH-SF
//! stand-in), then computes each join "at intersecting cluster heads or
//! the sink if none exist": when both sources fall into the same cluster
//! the join runs on that cluster's head; otherwise the streams have no
//! common head and the join falls back to the sink. Head election is
//! resource-agnostic, so popular heads overload (Fig. 6), but latency is
//! competitive because heads sit central to their clusters (Fig. 7).

use nova_netcoord::CostSpace;
use nova_topology::Topology;

use crate::placement::Placement;
use crate::plan::{JoinQuery, ResolvedPlan};

use super::clustering::{fuzzy_cmeans, ClusterParams, Clustering};
use super::whole_pair_replica;

/// Cluster the topology and place joins at common cluster heads.
pub fn cl_sf(
    query: &JoinQuery,
    plan: &ResolvedPlan,
    topology: &Topology,
    space: &CostSpace,
    params: &ClusterParams,
) -> Placement {
    let clustering = cluster_topology(topology, space, params);
    placement_from_clusters(query, plan, &clustering, "cl-sf")
}

/// Shared clustering step (also used by Cl-Tree-SF).
pub(crate) fn cluster_topology(
    topology: &Topology,
    space: &CostSpace,
    params: &ClusterParams,
) -> Clustering {
    let mut ids = Vec::with_capacity(topology.len());
    let mut coords = Vec::with_capacity(topology.len());
    for node in topology.nodes() {
        if let Some(c) = space.coord(node.id) {
            ids.push(node.id);
            coords.push(c);
        }
    }
    fuzzy_cmeans(&ids, &coords, params)
}

fn placement_from_clusters(
    query: &JoinQuery,
    plan: &ResolvedPlan,
    clustering: &Clustering,
    label: &str,
) -> Placement {
    let mut placement = Placement::new(label);
    placement.replicas.reserve(plan.len());
    for pair in &plan.pairs {
        let l = query.left_stream(pair).node;
        let r = query.right_stream(pair).node;
        let node = match (clustering.cluster_of(l), clustering.cluster_of(r)) {
            (Some(cl), Some(cr)) if cl == cr => clustering.heads[cl],
            _ => query.sink,
        };
        placement
            .replicas
            .push(whole_pair_replica(query, pair, node));
    }
    placement
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::StreamSpec;
    use nova_geom::Coord;
    use nova_topology::{NodeId, NodeRole};

    /// Two geographic regions far apart; sink in the middle.
    fn world() -> (Topology, CostSpace) {
        let mut t = Topology::new();
        let mut coords = Vec::new();
        t.add_node(NodeRole::Sink, 10.0, "sink");
        coords.push(Coord::xy(50.0, 0.0));
        // Region A around x=0: two sources + two workers.
        for i in 0..4 {
            let role = if i < 2 {
                NodeRole::Source
            } else {
                NodeRole::Worker
            };
            t.add_node(role, 10.0, format!("a{i}"));
            coords.push(Coord::xy(i as f64, 0.0));
        }
        // Region B around x=100.
        for i in 0..4 {
            let role = if i < 2 {
                NodeRole::Source
            } else {
                NodeRole::Worker
            };
            t.add_node(role, 10.0, format!("b{i}"));
            coords.push(Coord::xy(100.0 + i as f64, 0.0));
        }
        (t, CostSpace::new(coords))
    }

    #[test]
    fn same_cluster_joins_at_head() {
        let (t, s) = world();
        // Pair within region A: a0 (node 1) × a1 (node 2).
        let q = JoinQuery::by_key(
            vec![StreamSpec::keyed(NodeId(1), 5.0, 1)],
            vec![StreamSpec::keyed(NodeId(2), 5.0, 1)],
            NodeId(0),
        );
        let plan = q.resolve();
        let params = ClusterParams {
            clusters: 2,
            ..ClusterParams::for_size(9)
        };
        let p = cl_sf(&q, &plan, &t, &s, &params);
        let node = p.replicas[0].node;
        // The head must be a region-A node (x < 10), not the sink.
        assert_ne!(node, NodeId(0));
        assert!(t.node(node).label.starts_with('a'), "head {node}");
    }

    #[test]
    fn cross_cluster_joins_fall_back_to_sink() {
        let (t, s) = world();
        // a0 (node 1) × b0 (node 5): different regions.
        let q = JoinQuery::by_key(
            vec![StreamSpec::keyed(NodeId(1), 5.0, 1)],
            vec![StreamSpec::keyed(NodeId(5), 5.0, 1)],
            NodeId(0),
        );
        let plan = q.resolve();
        let params = ClusterParams {
            clusters: 2,
            ..ClusterParams::for_size(9)
        };
        let p = cl_sf(&q, &plan, &t, &s, &params);
        assert_eq!(p.replicas[0].node, NodeId(0));
    }
}
