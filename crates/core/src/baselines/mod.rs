//! The six baselines of the paper's evaluation (§4.1).
//!
//! | Baseline  | Origin | Decision rule |
//! |-----------|--------|---------------|
//! | Sink      | NebulaStream default | all joins at the sink node |
//! | Source    | locality-aware heuristic \[67\] | each join at its higher-rate source |
//! | Top-c     | cloud-style resource-aware heuristic | joins on the node with the highest remaining capacity |
//! | Tree      | WSN multi-hop joins \[49\] | MST over the topology, join where the two streams' paths to the sink intersect |
//! | Cl-SF     | LEACH-SF clustering \[64\] | fuzzy clustering, join at the common cluster head, else the sink |
//! | Cl-Tree-SF| hybrid | cluster heads linked by an MST, join at head-path intersections |
//!
//! All baselines emit the same [`Placement`] representation as Nova so
//! the evaluator compares them uniformly. Except for Top-c they are
//! resource-agnostic — exactly the property the overload experiment
//! (Fig. 6) exposes. The tree-based methods record their multi-hop
//! overlay routes so relay forwarding is charged to intermediate nodes.

mod clsf;
mod cltreesf;
mod clustering;
mod sink;
mod source;
mod topc;
mod tree;

pub use clsf::cl_sf;
pub use cltreesf::cl_tree_sf;
pub use clustering::{fuzzy_cmeans, ClusterParams, Clustering};
pub use sink::sink_based;
pub use source::source_based;
pub use topc::top_c;
pub use tree::tree_based;

use nova_topology::NodeId;

use crate::placement::{direct_path, PlacedReplica, Placement};
use crate::plan::{JoinQuery, ResolvedPlan};
use crate::types::JoinPair;

/// Every pair's single replica pinned on one `host` with direct
/// routing legs — the "run everything here" placement. Not one of the
/// paper's baselines, but the shape the live-reconfiguration tests and
/// the churn benchmark build their pre/post plans from (pin on host A,
/// switch to host B), shared here so they cannot drift apart.
pub fn host_based(query: &JoinQuery, plan: &ResolvedPlan, host: NodeId) -> Placement {
    let mut placement = Placement::new("host");
    placement.replicas.reserve(plan.len());
    for pair in &plan.pairs {
        placement
            .replicas
            .push(whole_pair_replica(query, pair, host));
    }
    placement
}

/// Build an *unpartitioned* replica of `pair` at `node` with direct
/// routing legs — the shape all non-tree baselines share.
pub(crate) fn whole_pair_replica(
    query: &JoinQuery,
    pair: &JoinPair,
    node: NodeId,
) -> PlacedReplica {
    let left = query.left_stream(pair);
    let right = query.right_stream(pair);
    PlacedReplica {
        pair: pair.id,
        node,
        left_rate: left.rate,
        right_rate: right.rate,
        left_partitions: vec![0],
        right_partitions: vec![0],
        merged_replicas: 1,
        left_path: direct_path(left.node, node),
        right_path: direct_path(right.node, node),
        out_path: direct_path(node, query.sink),
        output_rate: query.output_rate(pair),
        overflowed: false,
    }
}
