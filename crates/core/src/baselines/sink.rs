//! Sink-based placement: NebulaStream's default strategy (§4.1).
//!
//! Every join executes on the sink node. This is the latency *lower
//! bound* of the paper's Fig. 7 comparison (one direct hop per stream,
//! no detour), but it funnels the entire workload through a single node
//! and therefore overloads it in every non-trivial configuration.

use crate::placement::Placement;
use crate::plan::{JoinQuery, ResolvedPlan};

use super::whole_pair_replica;

/// Place every pair on the sink.
pub fn sink_based(query: &JoinQuery, plan: &ResolvedPlan) -> Placement {
    let mut placement = Placement::new("sink");
    placement.replicas.reserve(plan.len());
    for pair in &plan.pairs {
        placement
            .replicas
            .push(whole_pair_replica(query, pair, query.sink));
    }
    placement
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::StreamSpec;
    use nova_topology::NodeId;

    #[test]
    fn all_replicas_land_on_the_sink() {
        let q = JoinQuery::by_key(
            vec![
                StreamSpec::keyed(NodeId(0), 10.0, 1),
                StreamSpec::keyed(NodeId(1), 10.0, 2),
            ],
            vec![
                StreamSpec::keyed(NodeId(2), 10.0, 1),
                StreamSpec::keyed(NodeId(3), 10.0, 2),
            ],
            NodeId(4),
        );
        let plan = q.resolve();
        let p = sink_based(&q, &plan);
        assert_eq!(p.replicas.len(), 2);
        assert!(p.replicas.iter().all(|r| r.node == NodeId(4)));
        // Output path is trivial (join already at the sink).
        assert!(p.replicas.iter().all(|r| r.out_path == vec![NodeId(4)]));
        assert_eq!(p.nodes_used(), vec![NodeId(4)]);
    }
}
