//! Fuzzy c-means clustering — the LEACH-SF stand-in.
//!
//! The paper's Cl-SF baseline clusters the topology with LEACH-SF \[64\],
//! an optimized Sugeno-fuzzy clustering protocol for WSNs. The exact
//! fuzzy rule base is not reproducible from the citation, so this module
//! implements the core of that family: fuzzy c-means over the cost-space
//! coordinates with cluster heads elected as the member closest to each
//! centroid. Like the original, head election is *resource-agnostic* —
//! which is precisely the property the paper's overload experiment
//! exposes (DESIGN.md §3 documents this substitution).

use nova_geom::Coord;
use nova_topology::NodeId;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Parameters for [`fuzzy_cmeans`].
#[derive(Debug, Clone, Copy)]
pub struct ClusterParams {
    /// Number of clusters `c`. LEACH-style protocols elect roughly 5 % of
    /// nodes as heads; callers typically pass `max(2, n/20)`.
    pub clusters: usize,
    /// Fuzzifier `m` (> 1); 2.0 is the standard choice.
    pub fuzzifier: f64,
    /// Maximum alternating iterations.
    pub max_iters: usize,
    /// Convergence threshold on centroid movement.
    pub tolerance: f64,
    /// Seed for centroid initialization.
    pub seed: u64,
}

impl ClusterParams {
    /// Standard parameters for a topology of `n` nodes.
    pub fn for_size(n: usize) -> Self {
        ClusterParams {
            clusters: (n / 20).max(2),
            fuzzifier: 2.0,
            max_iters: 50,
            tolerance: 1e-6,
            seed: 0xC1u64,
        }
    }
}

/// Result of clustering a node population.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// The clustered nodes, in input order.
    pub members: Vec<NodeId>,
    /// Cluster index per member (argmax membership).
    pub assignment: Vec<usize>,
    /// Elected head per cluster (member closest to the centroid).
    pub heads: Vec<NodeId>,
    /// Final centroids.
    pub centroids: Vec<Coord>,
}

impl Clustering {
    /// Cluster index of a node, or `None` if it was not clustered.
    pub fn cluster_of(&self, id: NodeId) -> Option<usize> {
        self.members
            .iter()
            .position(|&m| m == id)
            .map(|i| self.assignment[i])
    }

    /// Head of the cluster containing `id`.
    pub fn head_of(&self, id: NodeId) -> Option<NodeId> {
        self.cluster_of(id).map(|c| self.heads[c])
    }
}

/// Fuzzy c-means over `coords` (parallel to `ids`).
///
/// # Panics
/// Panics if `ids` and `coords` differ in length or `fuzzifier <= 1`.
pub fn fuzzy_cmeans(ids: &[NodeId], coords: &[Coord], params: &ClusterParams) -> Clustering {
    assert_eq!(ids.len(), coords.len(), "ids/coords length mismatch");
    assert!(params.fuzzifier > 1.0, "fuzzifier must exceed 1");
    let n = ids.len();
    let c = params.clusters.min(n.max(1));
    if n == 0 {
        return Clustering {
            members: Vec::new(),
            assignment: Vec::new(),
            heads: Vec::new(),
            centroids: Vec::new(),
        };
    }
    let mut rng = StdRng::seed_from_u64(params.seed);
    // Initialize centroids on distinct random members.
    let mut picks: Vec<usize> = (0..n).collect();
    picks.shuffle(&mut rng);
    let mut centroids: Vec<Coord> = picks.iter().take(c).map(|&i| coords[i]).collect();

    let exp = 2.0 / (params.fuzzifier - 1.0);
    let mut memberships = vec![0.0f64; n * c];
    for _ in 0..params.max_iters {
        // Update memberships: u_ik = 1 / Σ_j (d_ik / d_jk)^(2/(m-1)).
        for (i, x) in coords.iter().enumerate() {
            let dists: Vec<f64> = centroids.iter().map(|ct| ct.dist(x).max(1e-12)).collect();
            for k in 0..c {
                let denom: f64 = dists.iter().map(|dj| (dists[k] / dj).powf(exp)).sum();
                memberships[i * c + k] = 1.0 / denom;
            }
        }
        // Update centroids: weighted mean with weights u^m.
        let mut moved = 0.0f64;
        for k in 0..c {
            let mut num = Coord::zero(coords[0].dim());
            let mut den = 0.0;
            for (i, x) in coords.iter().enumerate() {
                let w = memberships[i * c + k].powf(params.fuzzifier);
                num += *x * w;
                den += w;
            }
            if den > 0.0 {
                let next = num * (1.0 / den);
                moved = moved.max(next.dist(&centroids[k]));
                centroids[k] = next;
            }
        }
        if moved <= params.tolerance {
            break;
        }
    }

    // Defuzzify: hard assignment by max membership.
    let assignment: Vec<usize> = (0..n)
        .map(|i| {
            (0..c)
                .max_by(|&a, &b| memberships[i * c + a].total_cmp(&memberships[i * c + b]))
                .unwrap_or(0)
        })
        .collect();
    // Head election: member nearest to its cluster's centroid
    // (resource-agnostic, like LEACH-SF).
    let mut heads = Vec::with_capacity(c);
    #[allow(clippy::needless_range_loop)] // `k` is the cluster id, not just an index
    for k in 0..c {
        let head = (0..n)
            .filter(|&i| assignment[i] == k)
            .min_by(|&a, &b| {
                coords[a]
                    .dist(&centroids[k])
                    .total_cmp(&coords[b].dist(&centroids[k]))
            })
            // Empty cluster: fall back to the globally nearest member.
            .unwrap_or_else(|| {
                (0..n)
                    .min_by(|&a, &b| {
                        coords[a]
                            .dist(&centroids[k])
                            .total_cmp(&coords[b].dist(&centroids[k]))
                    })
                    .expect("n > 0")
            });
        heads.push(ids[head]);
    }
    Clustering {
        members: ids.to_vec(),
        assignment,
        heads,
        centroids,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> (Vec<NodeId>, Vec<Coord>) {
        let mut ids = Vec::new();
        let mut coords = Vec::new();
        for i in 0..20 {
            ids.push(NodeId(i));
            let (cx, off) = if i < 10 {
                (0.0, i as f64)
            } else {
                (100.0, (i - 10) as f64)
            };
            coords.push(Coord::xy(cx + off * 0.1, 0.0));
        }
        (ids, coords)
    }

    #[test]
    fn separates_two_blobs() {
        let (ids, coords) = two_blobs();
        let params = ClusterParams {
            clusters: 2,
            ..ClusterParams::for_size(20)
        };
        let cl = fuzzy_cmeans(&ids, &coords, &params);
        // All members of blob 1 share a cluster, all of blob 2 another.
        let c0 = cl.assignment[0];
        assert!(cl.assignment[..10].iter().all(|&a| a == c0));
        let c1 = cl.assignment[10];
        assert_ne!(c0, c1);
        assert!(cl.assignment[10..].iter().all(|&a| a == c1));
    }

    #[test]
    fn heads_are_members_of_their_cluster() {
        let (ids, coords) = two_blobs();
        let params = ClusterParams {
            clusters: 2,
            ..ClusterParams::for_size(20)
        };
        let cl = fuzzy_cmeans(&ids, &coords, &params);
        for (k, head) in cl.heads.iter().enumerate() {
            let idx = ids.iter().position(|i| i == head).unwrap();
            assert_eq!(
                cl.assignment[idx], k,
                "head of cluster {k} must belong to it"
            );
        }
    }

    #[test]
    fn cluster_of_and_head_of_lookups() {
        let (ids, coords) = two_blobs();
        let params = ClusterParams {
            clusters: 2,
            ..ClusterParams::for_size(20)
        };
        let cl = fuzzy_cmeans(&ids, &coords, &params);
        let c = cl.cluster_of(NodeId(3)).unwrap();
        assert_eq!(cl.head_of(NodeId(3)), Some(cl.heads[c]));
        assert_eq!(cl.cluster_of(NodeId(999)), None);
    }

    #[test]
    fn handles_tiny_populations() {
        let ids = vec![NodeId(0)];
        let coords = vec![Coord::xy(1.0, 1.0)];
        let cl = fuzzy_cmeans(&ids, &coords, &ClusterParams::for_size(1));
        assert_eq!(cl.assignment, vec![0]);
        assert_eq!(cl.heads[0], NodeId(0));
        let empty = fuzzy_cmeans(&[], &[], &ClusterParams::for_size(0));
        assert!(empty.members.is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let (ids, coords) = two_blobs();
        let params = ClusterParams {
            clusters: 3,
            ..ClusterParams::for_size(20)
        };
        let a = fuzzy_cmeans(&ids, &coords, &params);
        let b = fuzzy_cmeans(&ids, &coords, &params);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.heads, b.heads);
    }
}
