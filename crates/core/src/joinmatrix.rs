//! The join matrix `M` (paper §2.1).
//!
//! A binary m×n matrix over the left/right physical stream partitions:
//! `M[p][q] = 1` means left stream `p` can join with right stream `q`.
//! For predefined conditions (e.g. joins on region identifiers) the matrix
//! is known up front; when join validity is uncertain it is initialized
//! dense and pruned at runtime (§3.6). Stored as a packed bitset so even
//! large source populations stay compact.

use serde::{Deserialize, Serialize};

use crate::types::StreamSpec;

/// Binary joinability matrix over left (rows) × right (columns) streams.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinMatrix {
    rows: usize,
    cols: usize,
    bits: Vec<u64>,
}

impl JoinMatrix {
    /// An all-zero matrix.
    pub fn empty(rows: usize, cols: usize) -> Self {
        let words = (rows * cols).div_ceil(64);
        JoinMatrix {
            rows,
            cols,
            bits: vec![0; words],
        }
    }

    /// A dense (all-ones) matrix — the initialization the paper uses when
    /// joinability is unknown in advance.
    pub fn dense(rows: usize, cols: usize) -> Self {
        let mut m = JoinMatrix::empty(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, true);
            }
        }
        m
    }

    /// Build from stream keys: `M[p][q] = 1` iff both streams carry equal
    /// keys (e.g. the same region id). Streams without a key join nothing.
    pub fn by_key(left: &[StreamSpec], right: &[StreamSpec]) -> Self {
        let mut m = JoinMatrix::empty(left.len(), right.len());
        for (r, l) in left.iter().enumerate() {
            if let Some(lk) = l.key {
                for (c, rr) in right.iter().enumerate() {
                    if rr.key == Some(lk) {
                        m.set(r, c, true);
                    }
                }
            }
        }
        m
    }

    /// Number of rows (left streams).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (right streams).
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    fn bit_index(&self, r: usize, c: usize) -> (usize, u64) {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        let idx = r * self.cols + c;
        (idx / 64, 1u64 << (idx % 64))
    }

    /// Whether left stream `r` can join right stream `c`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        let (w, mask) = self.bit_index(r, c);
        self.bits[w] & mask != 0
    }

    /// Set or clear an entry.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: bool) {
        let (w, mask) = self.bit_index(r, c);
        if value {
            self.bits[w] |= mask;
        } else {
            self.bits[w] &= !mask;
        }
    }

    /// Number of set entries (= join pairs after resolution).
    pub fn count_ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterate over all set `(row, col)` entries in row-major order.
    pub fn ones(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.rows)
            .flat_map(move |r| (0..self.cols).filter_map(move |c| self.get(r, c).then_some((r, c))))
    }

    /// Grow the matrix by one row (new left stream), all entries zero.
    pub fn push_row(&mut self) {
        let mut next = JoinMatrix::empty(self.rows + 1, self.cols);
        for (r, c) in self.ones() {
            next.set(r, c, true);
        }
        *self = next;
    }

    /// Grow the matrix by one column (new right stream), all entries zero.
    pub fn push_col(&mut self) {
        let mut next = JoinMatrix::empty(self.rows, self.cols + 1);
        for (r, c) in self.ones() {
            next.set(r, c, true);
        }
        *self = next;
    }

    /// Remove a row, shifting subsequent rows up (source removal, §3.5).
    pub fn remove_row(&mut self, row: usize) {
        assert!(row < self.rows, "row {row} out of bounds");
        let mut next = JoinMatrix::empty(self.rows - 1, self.cols);
        for (r, c) in self.ones() {
            if r != row {
                next.set(if r > row { r - 1 } else { r }, c, true);
            }
        }
        *self = next;
    }

    /// Remove a column, shifting subsequent columns left.
    pub fn remove_col(&mut self, col: usize) {
        assert!(col < self.cols, "col {col} out of bounds");
        let mut next = JoinMatrix::empty(self.rows, self.cols - 1);
        for (r, c) in self.ones() {
            if c != col {
                next.set(r, if c > col { c - 1 } else { c }, true);
            }
        }
        *self = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_topology::NodeId;

    #[test]
    fn empty_and_dense() {
        let e = JoinMatrix::empty(3, 4);
        assert_eq!(e.count_ones(), 0);
        let d = JoinMatrix::dense(3, 4);
        assert_eq!(d.count_ones(), 12);
        assert!(d.get(2, 3));
    }

    #[test]
    fn set_get_roundtrip() {
        let mut m = JoinMatrix::empty(5, 5);
        m.set(1, 2, true);
        m.set(4, 4, true);
        assert!(m.get(1, 2));
        assert!(m.get(4, 4));
        assert!(!m.get(2, 1));
        m.set(1, 2, false);
        assert!(!m.get(1, 2));
        assert_eq!(m.count_ones(), 1);
    }

    #[test]
    fn by_key_matches_equal_keys_only() {
        let left = vec![
            StreamSpec::keyed(NodeId(0), 1.0, 1),
            StreamSpec::keyed(NodeId(1), 1.0, 2),
            StreamSpec::new(NodeId(2), 1.0), // keyless: joins nothing
        ];
        let right = vec![
            StreamSpec::keyed(NodeId(3), 1.0, 1),
            StreamSpec::keyed(NodeId(4), 1.0, 2),
        ];
        let m = JoinMatrix::by_key(&left, &right);
        assert!(m.get(0, 0));
        assert!(m.get(1, 1));
        assert!(!m.get(0, 1));
        assert!(!m.get(2, 0));
        assert_eq!(m.count_ones(), 2);
    }

    #[test]
    fn ones_iterates_row_major() {
        let mut m = JoinMatrix::empty(2, 3);
        m.set(0, 2, true);
        m.set(1, 0, true);
        let v: Vec<_> = m.ones().collect();
        assert_eq!(v, vec![(0, 2), (1, 0)]);
    }

    #[test]
    fn push_and_remove_preserve_entries() {
        let mut m = JoinMatrix::empty(2, 2);
        m.set(0, 0, true);
        m.set(1, 1, true);
        m.push_row();
        m.push_col();
        assert_eq!((m.rows(), m.cols()), (3, 3));
        assert!(m.get(0, 0) && m.get(1, 1));
        m.set(2, 2, true);
        m.remove_row(1);
        assert_eq!(m.rows(), 2);
        assert!(m.get(0, 0));
        assert!(m.get(1, 2), "row 2 shifted up to row 1");
        m.remove_col(0);
        assert_eq!(m.cols(), 2);
        assert!(m.get(1, 1), "col 2 shifted left to col 1");
        assert_eq!(m.count_ones(), 1);
    }

    #[test]
    fn large_matrix_bitpacking() {
        let mut m = JoinMatrix::empty(100, 130);
        for i in 0..100 {
            m.set(i, i, true);
        }
        assert_eq!(m.count_ones(), 100);
        for i in 0..100 {
            assert!(m.get(i, i));
            assert!(!m.get(i, (i + 1) % 130) || i + 1 == i);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn remove_row_out_of_bounds_panics() {
        let mut m = JoinMatrix::empty(2, 2);
        m.remove_row(5);
    }
}
