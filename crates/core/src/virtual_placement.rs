//! Phase II: virtual join placement in the cost space (paper §3.3).
//!
//! Join replicas are independent — each connects only to its two sources
//! and the sink, with no inter-replica dependencies — so the spring-energy
//! objective of NEMO decouples and reduces to one geometric median per
//! replica (Eq. 6): the point minimizing the summed distance to the
//! replica's pinned endpoints. The median is convex with a unique, stable
//! optimum, which is also why re-optimization can reuse these virtual
//! positions unchanged when only physical conditions shift (§3.5).

use nova_geom::{geometric_median, Coord, MedianOptions};
use nova_netcoord::CostSpace;

use crate::plan::{JoinQuery, ResolvedPlan};
use crate::types::JoinPair;

/// Compute the virtual (cost-space) position of every join pair in the
/// plan: the geometric median of {left source, right source, sink}.
///
/// # Panics
/// Panics if any pinned node has no coordinate in the cost space — the
/// caller must embed all sources and the sink first.
pub fn compute_optima(query: &JoinQuery, plan: &ResolvedPlan, space: &CostSpace) -> Vec<Coord> {
    plan.pairs
        .iter()
        .map(|pair| virtual_position(query, pair, space))
        .collect()
}

/// Virtual position of a single pair.
pub fn virtual_position(query: &JoinQuery, pair: &JoinPair, space: &CostSpace) -> Coord {
    let anchors = pinned_anchors(query, pair, space);
    geometric_median(&anchors, MedianOptions::default())
        .expect("pair always has three anchors")
        .point
}

/// The pinned endpoints of a pair in the cost space: left source, right
/// source, sink.
pub fn pinned_anchors(query: &JoinQuery, pair: &JoinPair, space: &CostSpace) -> [Coord; 3] {
    let l = query.left_stream(pair).node;
    let r = query.right_stream(pair).node;
    let coord = |id| {
        space
            .coord(id)
            .unwrap_or_else(|| panic!("node {id} has no cost-space coordinate"))
    };
    [coord(l), coord(r), coord(query.sink)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::StreamSpec;
    use nova_topology::NodeId;

    fn space() -> CostSpace {
        CostSpace::new(vec![
            Coord::xy(0.0, 0.0),     // n0: left source
            Coord::xy(10.0, 0.0),    // n1: right source
            Coord::xy(5.0, 10.0),    // n2: sink
            Coord::xy(100.0, 100.0), // n3: another left source
        ])
    }

    fn query() -> JoinQuery {
        JoinQuery::by_key(
            vec![
                StreamSpec::keyed(NodeId(0), 10.0, 1),
                StreamSpec::keyed(NodeId(3), 10.0, 1),
            ],
            vec![StreamSpec::keyed(NodeId(1), 10.0, 1)],
            NodeId(2),
        )
    }

    #[test]
    fn optima_lie_inside_the_anchor_hull() {
        let q = query();
        let plan = q.resolve();
        let optima = compute_optima(&q, &plan, &space());
        assert_eq!(optima.len(), 2);
        // Pair 0 anchors: (0,0), (10,0), (5,10) — the median is interior.
        let p = optima[0];
        assert!(p[0] > 0.0 && p[0] < 10.0, "{p:?}");
        assert!(p[1] > 0.0 && p[1] < 10.0, "{p:?}");
    }

    #[test]
    fn optimum_minimizes_summed_distance_vs_anchors() {
        let q = query();
        let plan = q.resolve();
        let s = space();
        let optima = compute_optima(&q, &plan, &s);
        let anchors = pinned_anchors(&q, &plan.pairs[0], &s);
        let cost = |y: &Coord| anchors.iter().map(|a| a.dist(y)).sum::<f64>();
        let c = cost(&optima[0]);
        for a in &anchors {
            assert!(c <= cost(a) + 1e-9);
        }
    }

    #[test]
    fn independent_pairs_get_independent_optima() {
        // Pair 1 involves the far-away source n3: its optimum must differ
        // from pair 0's.
        let q = query();
        let plan = q.resolve();
        let optima = compute_optima(&q, &plan, &space());
        assert!(optima[0].dist(&optima[1]) > 1.0);
    }

    #[test]
    #[should_panic(expected = "no cost-space coordinate")]
    fn missing_coordinate_panics() {
        let q = query();
        let plan = q.resolve();
        let mut s = space();
        s.remove(NodeId(1));
        let _ = compute_optima(&q, &plan, &s);
    }
}
