//! Shared value types of the Nova optimizer.

use nova_topology::NodeId;
use serde::{Deserialize, Serialize};

/// Which side of the two-way join a stream belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Side {
    /// The left input (the paper's stream `S` / `l_l`).
    Left,
    /// The right input (the paper's stream `T` / `r_l`).
    Right,
}

impl Side {
    /// The opposite side.
    pub fn other(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }
}

/// A physical stream: the unit produced by source expansion (§3.3).
///
/// One logical stream (e.g. "pressure") expands into many physical
/// streams, one per data-producing node, all sharing the same schema.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamSpec {
    /// The node producing this stream (pinned).
    pub node: NodeId,
    /// Data rate `dr(s)` in tuples/second.
    pub rate: f64,
    /// Optional partitioning key (e.g. region id). Streams with equal
    /// keys are joinable when the join matrix is built by key.
    pub key: Option<u32>,
}

impl StreamSpec {
    /// A keyless stream at `node` with the given rate.
    pub fn new(node: NodeId, rate: f64) -> Self {
        StreamSpec {
            node,
            rate,
            key: None,
        }
    }

    /// A keyed stream (key = join attribute value, e.g. region).
    pub fn keyed(node: NodeId, rate: f64, key: u32) -> Self {
        StreamSpec {
            node,
            rate,
            key: Some(key),
        }
    }
}

/// Identifier of a join pair (one replica of the logical join created for
/// one `(left stream, right stream)` entry of the join matrix).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PairId(pub u32);

impl PairId {
    /// Dense index.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PairId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "j{}", self.0)
    }
}

/// One `(left, right)` joinable pair resolved from the join matrix: the
/// unit Phase II places and Phase III parallelizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinPair {
    /// Identifier of this pair.
    pub id: PairId,
    /// Index into the query's left stream list.
    pub left: u32,
    /// Index into the query's right stream list.
    pub right: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn side_other_flips() {
        assert_eq!(Side::Left.other(), Side::Right);
        assert_eq!(Side::Right.other(), Side::Left);
    }

    #[test]
    fn stream_spec_constructors() {
        let s = StreamSpec::new(NodeId(3), 25.0);
        assert_eq!(s.key, None);
        let k = StreamSpec::keyed(NodeId(3), 25.0, 7);
        assert_eq!(k.key, Some(7));
        assert_eq!(k.rate, 25.0);
    }
}
