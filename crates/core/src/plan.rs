//! Queries and resolved plans.
//!
//! A [`JoinQuery`] is the logical plan Ω_log of the paper specialized to
//! the two-way stream join Nova targets: two logical input streams (each
//! already expanded into physical per-source streams), one sink, a join
//! matrix and a join selectivity. `resolve` performs the paper's
//! *resolving operators* step (§3.3): pair-wise join replication over the
//! matrix entries, producing the intermediate parallelized plan Ω'_log
//! whose join replicas Phase II places independently.

use nova_topology::NodeId;
use serde::{Deserialize, Serialize};

use crate::joinmatrix::JoinMatrix;
use crate::types::{JoinPair, PairId, StreamSpec};

/// A two-way stream join query over physical streams.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JoinQuery {
    /// Left physical streams (source expansion already applied).
    pub left: Vec<StreamSpec>,
    /// Right physical streams.
    pub right: Vec<StreamSpec>,
    /// The sink node consuming all join results (pinned).
    pub sink: NodeId,
    /// Joinability matrix over `left × right`.
    pub matrix: JoinMatrix,
    /// Join selectivity: output rate = selectivity · (dr(l) + dr(r)).
    /// Joins amplify data (§1); values above 1 model amplification,
    /// values below 1 model selective predicates.
    pub selectivity: f64,
}

impl JoinQuery {
    /// Build a query whose matrix joins streams with equal keys — the
    /// predefined-condition case (e.g. regional joins).
    pub fn by_key(left: Vec<StreamSpec>, right: Vec<StreamSpec>, sink: NodeId) -> Self {
        let matrix = JoinMatrix::by_key(&left, &right);
        JoinQuery {
            left,
            right,
            sink,
            matrix,
            selectivity: 1.0,
        }
    }

    /// Build a query with a dense matrix — every pair must be evaluated.
    pub fn dense(left: Vec<StreamSpec>, right: Vec<StreamSpec>, sink: NodeId) -> Self {
        let matrix = JoinMatrix::dense(left.len(), right.len());
        JoinQuery {
            left,
            right,
            sink,
            matrix,
            selectivity: 1.0,
        }
    }

    /// Override the join selectivity.
    pub fn with_selectivity(mut self, selectivity: f64) -> Self {
        assert!(
            selectivity >= 0.0 && selectivity.is_finite(),
            "invalid selectivity"
        );
        self.selectivity = selectivity;
        self
    }

    /// Resolve the query into its parallelized logical plan: one join
    /// replica per set matrix entry (§3.3 "pair-wise join replication").
    pub fn resolve(&self) -> ResolvedPlan {
        assert_eq!(
            self.matrix.rows(),
            self.left.len(),
            "matrix rows != left streams"
        );
        assert_eq!(
            self.matrix.cols(),
            self.right.len(),
            "matrix cols != right streams"
        );
        let pairs: Vec<JoinPair> = self
            .matrix
            .ones()
            .enumerate()
            .map(|(i, (r, c))| JoinPair {
                id: PairId(i as u32),
                left: r as u32,
                right: c as u32,
            })
            .collect();
        ResolvedPlan { pairs }
    }

    /// Total input data rate across all physical streams.
    pub fn total_input_rate(&self) -> f64 {
        self.left.iter().chain(&self.right).map(|s| s.rate).sum()
    }

    /// The left stream of a pair.
    pub fn left_stream(&self, pair: &JoinPair) -> &StreamSpec {
        &self.left[pair.left as usize]
    }

    /// The right stream of a pair.
    pub fn right_stream(&self, pair: &JoinPair) -> &StreamSpec {
        &self.right[pair.right as usize]
    }

    /// Required compute capacity of an *unpartitioned* replica of `pair`:
    /// `C_r(ω) = Σ dr(s)` over its input streams (§2.2).
    pub fn required_capacity(&self, pair: &JoinPair) -> f64 {
        self.left_stream(pair).rate + self.right_stream(pair).rate
    }

    /// Output rate of a pair's join, per the query selectivity.
    pub fn output_rate(&self, pair: &JoinPair) -> f64 {
        self.selectivity * self.required_capacity(pair)
    }
}

/// The intermediate parallelized plan Ω'_log: independent join replicas,
/// one per join-matrix entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResolvedPlan {
    /// The join pairs in matrix row-major order; `PairId` indexes this.
    pub pairs: Vec<JoinPair>,
}

impl ResolvedPlan {
    /// Number of join pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the plan has no join pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Pair by id.
    pub fn pair(&self, id: PairId) -> &JoinPair {
        &self.pairs[id.idx()]
    }

    /// All pairs touching the given left stream index.
    pub fn pairs_with_left(&self, left: u32) -> impl Iterator<Item = &JoinPair> + '_ {
        self.pairs.iter().filter(move |p| p.left == left)
    }

    /// All pairs touching the given right stream index.
    pub fn pairs_with_right(&self, right: u32) -> impl Iterator<Item = &JoinPair> + '_ {
        self.pairs.iter().filter(move |p| p.right == right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_query() -> JoinQuery {
        // Mirrors the running example: 4 pressure streams, 2 humidity
        // streams, joined by region key.
        let left = vec![
            StreamSpec::keyed(NodeId(0), 25.0, 1),
            StreamSpec::keyed(NodeId(1), 25.0, 1),
            StreamSpec::keyed(NodeId(2), 25.0, 2),
            StreamSpec::keyed(NodeId(3), 25.0, 2),
        ];
        let right = vec![
            StreamSpec::keyed(NodeId(4), 25.0, 1),
            StreamSpec::keyed(NodeId(5), 25.0, 2),
        ];
        JoinQuery::by_key(left, right, NodeId(6))
    }

    #[test]
    fn resolve_creates_one_replica_per_matrix_entry() {
        let q = sample_query();
        let plan = q.resolve();
        // T × W decomposes into 4 region-aligned sub-joins (Fig. 1 / §3.1).
        assert_eq!(plan.len(), 4);
        // Row-major: (t1,w1), (t2,w1), (t3,w2), (t4,w2).
        assert_eq!(plan.pairs[0].left, 0);
        assert_eq!(plan.pairs[0].right, 0);
        assert_eq!(plan.pairs[2].left, 2);
        assert_eq!(plan.pairs[2].right, 1);
        // Ids are dense.
        for (i, p) in plan.pairs.iter().enumerate() {
            assert_eq!(p.id.idx(), i);
        }
    }

    #[test]
    fn required_capacity_sums_input_rates() {
        let q = sample_query();
        let plan = q.resolve();
        assert_eq!(q.required_capacity(&plan.pairs[0]), 50.0);
        assert_eq!(q.output_rate(&plan.pairs[0]), 50.0);
        let q2 = sample_query().with_selectivity(0.5);
        let plan2 = q2.resolve();
        assert_eq!(q2.output_rate(&plan2.pairs[0]), 25.0);
    }

    #[test]
    fn dense_query_creates_full_cross() {
        let left = vec![
            StreamSpec::new(NodeId(0), 1.0),
            StreamSpec::new(NodeId(1), 2.0),
        ];
        let right = vec![StreamSpec::new(NodeId(2), 3.0)];
        let q = JoinQuery::dense(left, right, NodeId(3));
        assert_eq!(q.resolve().len(), 2);
        assert_eq!(q.total_input_rate(), 6.0);
    }

    #[test]
    fn pairs_with_stream_filters() {
        let q = sample_query();
        let plan = q.resolve();
        assert_eq!(plan.pairs_with_right(0).count(), 2);
        assert_eq!(plan.pairs_with_left(3).count(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid selectivity")]
    fn negative_selectivity_rejected() {
        let _ = sample_query().with_selectivity(-1.0);
    }
}
