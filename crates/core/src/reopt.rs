//! Re-optimization and adaptivity (paper §3.5).
//!
//! Nova never recomputes the full placement on change. The convex virtual
//! optima of Phase II stay valid when physical conditions shift, so every
//! event below re-runs only Phase III, and only for the affected pairs:
//!
//! * **Topology changes** — adding a worker embeds one coordinate against
//!   a fixed-size neighbor set (constant time) and updates the search
//!   index; removing a node undeploys and re-places just the replicas it
//!   hosted; adding/removing a source extends/prunes the join matrix and
//!   (re)solves only the affected sub-branch.
//! * **Workload changes** — data-rate or capacity changes undeploy the
//!   affected replicas and re-run physical placement for them; the
//!   virtual placement is skipped because it does not depend on rates.
//! * **Coordinate drift** — a node whose latencies changed substantially
//!   is removed and re-added to the embedding, then operators it hosts
//!   are re-placed.

use nova_netcoord::embed_new_node;
use nova_topology::{LatencyProvider, NodeId, NodeRole};

use crate::optimizer::Nova;
use crate::placement::place_pair;
use crate::types::{PairId, Side, StreamSpec};
use crate::virtual_placement;

/// Errors of the re-optimization API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReoptError {
    /// `optimize` has not been called yet — there is nothing to adapt.
    NoActiveQuery,
    /// The referenced node does not exist.
    UnknownNode(NodeId),
    /// The referenced stream index does not exist on that side.
    UnknownStream(Side, u32),
}

impl std::fmt::Display for ReoptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReoptError::NoActiveQuery => write!(f, "no active query; call optimize first"),
            ReoptError::UnknownNode(n) => write!(f, "unknown node {n}"),
            ReoptError::UnknownStream(side, i) => write!(f, "unknown {side:?} stream #{i}"),
        }
    }
}

impl std::error::Error for ReoptError {}

/// Summary of one re-optimization step.
#[derive(Debug, Clone, Default)]
pub struct ReoptOutcome {
    /// Pairs whose physical placement was recomputed.
    pub replaced_pairs: Vec<PairId>,
    /// Node created by the event, if any.
    pub new_node: Option<NodeId>,
}

/// One §3.5 adaptation event **as data** — the unit a control plane
/// ships around. [`Nova::apply_step`] dispatches a step to the
/// corresponding imperative method; representing the event as a value
/// is what lets the executor's live-reconfiguration path (and any
/// future external controller) log, queue and replay the same change
/// the optimizer absorbed.
#[derive(Debug, Clone, PartialEq)]
pub enum ReoptStep {
    /// Add an idle worker ([`Nova::add_worker`]).
    AddWorker {
        /// Capacity in tuples/s.
        capacity: f64,
        /// Human-readable node label.
        label: String,
    },
    /// Add a source stream ([`Nova::add_source`]).
    AddSource {
        /// Side of the join the stream feeds.
        side: Side,
        /// Data rate in tuples/s.
        rate: f64,
        /// Join key (region id).
        key: u32,
        /// Node capacity in tuples/s.
        capacity: f64,
        /// Human-readable node label.
        label: String,
    },
    /// Remove a node of any role ([`Nova::remove_node`]).
    RemoveNode {
        /// The departing node.
        node: NodeId,
    },
    /// Change a stream's data rate ([`Nova::change_rate`]).
    ChangeRate {
        /// Side of the join.
        side: Side,
        /// Stream index on that side.
        stream: u32,
        /// New rate in tuples/s.
        new_rate: f64,
    },
    /// Change a worker's capacity ([`Nova::change_capacity`]).
    ChangeCapacity {
        /// The resized node.
        node: NodeId,
        /// New capacity in tuples/s.
        new_capacity: f64,
    },
    /// Re-embed a drifted node ([`Nova::update_coordinates`]).
    UpdateCoordinates {
        /// The node whose latency profile changed.
        node: NodeId,
    },
}

impl Nova {
    /// Apply one [`ReoptStep`] — the data-driven face of the §3.5 API.
    /// Exactly equivalent to calling the step's imperative method;
    /// `provider` is consulted only by the steps that embed a
    /// coordinate (worker/source addition, coordinate update).
    pub fn apply_step(
        &mut self,
        provider: &impl LatencyProvider,
        step: &ReoptStep,
    ) -> Result<ReoptOutcome, ReoptError> {
        match step {
            ReoptStep::AddWorker { capacity, label } => {
                let id = self.add_worker(provider, *capacity, label.clone());
                Ok(ReoptOutcome {
                    new_node: Some(id),
                    ..Default::default()
                })
            }
            ReoptStep::AddSource {
                side,
                rate,
                key,
                capacity,
                label,
            } => self.add_source(provider, *side, *rate, *key, *capacity, label.clone()),
            ReoptStep::RemoveNode { node } => self.remove_node(*node),
            ReoptStep::ChangeRate {
                side,
                stream,
                new_rate,
            } => self.change_rate(*side, *stream, *new_rate),
            ReoptStep::ChangeCapacity { node, new_capacity } => {
                self.change_capacity(*node, *new_capacity)
            }
            ReoptStep::UpdateCoordinates { node } => self.update_coordinates(provider, *node),
        }
    }
}

impl Nova {
    /// Add an idle worker node (§3.5 "topology changes"). Embeds its
    /// coordinate against a fixed-size neighbor set via `provider` and
    /// registers it with the candidate index. No placement changes.
    pub fn add_worker(
        &mut self,
        provider: &impl LatencyProvider,
        capacity: f64,
        label: impl Into<String>,
    ) -> NodeId {
        let id = self.topology.add_node(NodeRole::Worker, capacity, label);
        let coord = embed_new_node(&self.space, provider, id, &self.config.vivaldi);
        self.space.set_coord(id, coord);
        self.avail.set(id, capacity);
        self.index.add_with_capacity(id, coord, capacity);
        id
    }

    /// Add a source node: extends the logical plan and the join matrix,
    /// then runs Phases II+III for the newly created pairs only.
    ///
    /// The new stream joins every opposite-side stream with a matching
    /// key (matrix growth by key, §3.5 / Fig. 3b).
    pub fn add_source(
        &mut self,
        provider: &impl LatencyProvider,
        side: Side,
        rate: f64,
        key: u32,
        capacity: f64,
        label: impl Into<String>,
    ) -> Result<ReoptOutcome, ReoptError> {
        if self.query.is_none() {
            return Err(ReoptError::NoActiveQuery);
        }
        let id = self.topology.add_node(NodeRole::Source, capacity, label);
        self.topology.node_mut(id).region = Some(key);
        let coord = embed_new_node(&self.space, provider, id, &self.config.vivaldi);
        self.space.set_coord(id, coord);
        // Capacity minus the pinned ingestion load (cf. optimize).
        self.avail.set(id, capacity);
        self.avail.take(id, rate);
        self.index.add_with_capacity(id, coord, capacity - rate);

        let template = self.phase_three_config();
        let query = self.query.as_mut().expect("checked above");
        let plan = self.plan.as_mut().expect("plan exists with query");
        let spec = StreamSpec::keyed(id, rate, key);
        // Extend the matrix and collect the new pairs.
        let mut new_pairs = Vec::new();
        match side {
            Side::Left => {
                query.left.push(spec);
                query.matrix.push_row();
                let row = query.left.len() - 1;
                for (col, other) in query.right.iter().enumerate() {
                    if other.key == Some(key) {
                        query.matrix.set(row, col, true);
                        new_pairs.push((row as u32, col as u32));
                    }
                }
            }
            Side::Right => {
                query.right.push(spec);
                query.matrix.push_col();
                let col = query.right.len() - 1;
                for (row, other) in query.left.iter().enumerate() {
                    if other.key == Some(key) {
                        query.matrix.set(row, col, true);
                        new_pairs.push((row as u32, col as u32));
                    }
                }
            }
        }
        let mut outcome = ReoptOutcome {
            new_node: Some(id),
            ..Default::default()
        };
        // Phase II + III for the new sub-branch only.
        for (left, right) in new_pairs {
            let pair = crate::types::JoinPair {
                id: PairId(plan.pairs.len() as u32),
                left,
                right,
            };
            let pos = virtual_placement::virtual_position(query, &pair, &self.space);
            let cfg = {
                // Inline of pair_config to avoid borrowing self wholly.
                let mut cfg = template;
                if let Some(tb) = self.config.bandwidth_budget {
                    cfg.sigma = crate::partitioning::sigma_for_bandwidth(
                        query.left_stream(&pair).rate,
                        query.right_stream(&pair).rate,
                        tb,
                    );
                }
                cfg
            };
            let placed = place_pair(
                query,
                &pair,
                pos,
                &mut self.index,
                &mut self.avail,
                self.median_capacity,
                &cfg,
            );
            self.placement.replicas.extend(placed.replicas);
            plan.pairs.push(pair);
            self.optima.push(pos);
            self.pair_dead.push(false);
            outcome.replaced_pairs.push(pair.id);
        }
        Ok(outcome)
    }

    /// Remove a node. Role-dependent (§3.5):
    /// * idle worker — drop from space and index, nothing re-placed;
    /// * join host — undeploy its replicas and re-run Phase III for the
    ///   affected pairs using their precomputed virtual positions;
    /// * source — deactivate all pairs of its streams and clear the
    ///   corresponding matrix entries (no re-placement: the data is gone).
    pub fn remove_node(&mut self, id: NodeId) -> Result<ReoptOutcome, ReoptError> {
        if id.idx() >= self.topology.len() {
            return Err(ReoptError::UnknownNode(id));
        }
        let mut outcome = ReoptOutcome::default();
        let role = self.topology.node(id).role;
        if let (NodeRole::Source, Some(query)) = (role, self.query.as_mut()) {
            // Deactivate every pair over a stream produced by this node
            // and clear the corresponding join-matrix entries.
            let plan = self.plan.as_ref().expect("plan exists with query");
            let mut dead_pairs = Vec::new();
            for pair in &plan.pairs {
                if self.pair_dead[pair.id.idx()] {
                    continue;
                }
                let l = query.left[pair.left as usize].node;
                let r = query.right[pair.right as usize].node;
                if l == id || r == id {
                    dead_pairs.push(pair.id);
                    query
                        .matrix
                        .set(pair.left as usize, pair.right as usize, false);
                }
            }
            for pid in dead_pairs {
                self.pair_dead[pid.idx()] = true;
                for rep in self.placement.remove_pair(pid) {
                    self.avail.release(rep.node, rep.required_capacity());
                    self.index.set_avail(rep.node, self.avail.get(rep.node));
                }
                outcome.replaced_pairs.push(pid);
            }
        }
        // In every case the node itself disappears: undeploy the pairs it
        // hosted (releasing capacity on their *other* hosts), drop it
        // from the index/space, zero its budget, then re-place the
        // affected pairs elsewhere.
        let affected: Vec<PairId> = {
            let mut v: Vec<PairId> = self
                .placement
                .replicas
                .iter()
                .filter(|r| r.node == id)
                .map(|r| r.pair)
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        for pid in &affected {
            for rep in self.placement.remove_pair(*pid) {
                if rep.node != id {
                    self.avail.release(rep.node, rep.required_capacity());
                    self.index.set_avail(rep.node, self.avail.get(rep.node));
                }
            }
        }
        self.index.remove(id);
        self.avail.set(id, 0.0);
        self.topology.node_mut(id).capacity = 0.0;
        self.space.remove(id);
        for pid in affected {
            self.place_pair_again(pid)?;
            if !outcome.replaced_pairs.contains(&pid) {
                outcome.replaced_pairs.push(pid);
            }
        }
        Ok(outcome)
    }

    /// Change a source stream's data rate: undeploy the affected pairs
    /// and re-run physical placement for them. Virtual positions are
    /// reused (they are independent of rates).
    pub fn change_rate(
        &mut self,
        side: Side,
        stream_idx: u32,
        new_rate: f64,
    ) -> Result<ReoptOutcome, ReoptError> {
        let query = self.query.as_mut().ok_or(ReoptError::NoActiveQuery)?;
        let streams = match side {
            Side::Left => &mut query.left,
            Side::Right => &mut query.right,
        };
        let stream = streams
            .get_mut(stream_idx as usize)
            .ok_or(ReoptError::UnknownStream(side, stream_idx))?;
        let old_rate = stream.rate;
        let node = stream.node;
        stream.rate = new_rate;
        // Adjust the pinned ingestion charge on the source node.
        self.avail.take(node, new_rate - old_rate);
        self.index.set_avail(node, self.avail.get(node));
        let plan = self.plan.as_ref().expect("plan exists with query");
        let affected: Vec<PairId> = plan
            .pairs
            .iter()
            .filter(|p| match side {
                Side::Left => p.left == stream_idx,
                Side::Right => p.right == stream_idx,
            })
            .filter(|p| !self.pair_dead[p.id.idx()])
            .map(|p| p.id)
            .collect();
        let mut outcome = ReoptOutcome::default();
        for pid in affected {
            self.replace_pair(pid)?;
            outcome.replaced_pairs.push(pid);
        }
        Ok(outcome)
    }

    /// Change a worker's available capacity: undeploy everything it
    /// hosts, update the budget, re-place the affected pairs.
    pub fn change_capacity(
        &mut self,
        id: NodeId,
        new_capacity: f64,
    ) -> Result<ReoptOutcome, ReoptError> {
        if id.idx() >= self.topology.len() {
            return Err(ReoptError::UnknownNode(id));
        }
        let affected: Vec<PairId> = {
            let mut v: Vec<PairId> = self
                .placement
                .replicas
                .iter()
                .filter(|r| r.node == id)
                .map(|r| r.pair)
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        // Undeploy hosted replicas of the affected pairs first so the new
        // budget starts clean on this node.
        let mut outcome = ReoptOutcome::default();
        for pid in &affected {
            for rep in self.placement.remove_pair(*pid) {
                if rep.node != id {
                    self.avail.release(rep.node, rep.required_capacity());
                    self.index.set_avail(rep.node, self.avail.get(rep.node));
                }
            }
        }
        self.topology.node_mut(id).capacity = new_capacity;
        self.avail.set(id, new_capacity);
        // Re-apply the pinned ingestion charge of any stream this node
        // produces (cf. optimize): the budget reset must not erase it.
        if let Some(query) = &self.query {
            for s in query.left.iter().chain(&query.right) {
                if s.node == id {
                    self.avail.take(id, s.rate);
                }
            }
        }
        self.index.set_avail(id, self.avail.get(id));
        for pid in affected {
            self.place_pair_again(pid)?;
            outcome.replaced_pairs.push(pid);
        }
        Ok(outcome)
    }

    /// Re-embed a node whose latency profile drifted (mobility, routing
    /// changes): remove + re-add in the NCS, update the index, then
    /// re-place any pairs it hosts.
    pub fn update_coordinates(
        &mut self,
        provider: &impl LatencyProvider,
        id: NodeId,
    ) -> Result<ReoptOutcome, ReoptError> {
        if id.idx() >= self.topology.len() {
            return Err(ReoptError::UnknownNode(id));
        }
        self.space.remove(id);
        let coord = embed_new_node(&self.space, provider, id, &self.config.vivaldi);
        self.space.set_coord(id, coord);
        if self.topology.node(id).role != NodeRole::Sink {
            self.index.update_coord(id, coord);
        }
        let affected: Vec<PairId> = {
            let mut v: Vec<PairId> = self
                .placement
                .replicas
                .iter()
                .filter(|r| r.node == id)
                .map(|r| r.pair)
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let mut outcome = ReoptOutcome::default();
        for pid in affected {
            self.replace_pair(pid)?;
            outcome.replaced_pairs.push(pid);
        }
        Ok(outcome)
    }

    /// Undeploy and re-place one pair (Phase III only).
    fn replace_pair(&mut self, pid: PairId) -> Result<(), ReoptError> {
        for rep in self.placement.remove_pair(pid) {
            self.avail.release(rep.node, rep.required_capacity());
            self.index.set_avail(rep.node, self.avail.get(rep.node));
        }
        self.place_pair_again(pid)
    }

    /// Re-run Phase III for one pair using its stored virtual position.
    fn place_pair_again(&mut self, pid: PairId) -> Result<(), ReoptError> {
        if self.pair_dead.get(pid.idx()).copied().unwrap_or(true) {
            return Ok(());
        }
        let query = self.query.as_ref().ok_or(ReoptError::NoActiveQuery)?;
        let plan = self.plan.as_ref().expect("plan exists with query");
        let pair = *plan.pair(pid);
        let template = self.phase_three_config();
        let cfg = self.pair_config(query, &pair, &template);
        let outcome = place_pair(
            query,
            &pair,
            self.optima[pid.idx()],
            &mut self.index,
            &mut self.avail,
            self.median_capacity,
            &cfg,
        );
        self.placement.replicas.extend(outcome.replicas);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::{Nova, NovaConfig};
    use crate::plan::JoinQuery;
    use nova_geom::Coord;
    use nova_netcoord::CostSpace;
    use nova_topology::{DenseRtt, Topology};

    /// A controlled world: sink at origin, two sources per region, a grid
    /// of workers. Ground-truth coordinates; RTT = coordinate distance.
    struct World {
        nova: Nova,
        rtt: DenseRtt,
    }

    fn world() -> World {
        let mut t = Topology::new();
        let mut coords = Vec::new();
        let sink = t.add_node(NodeRole::Sink, 100.0, "sink");
        coords.push(Coord::xy(0.0, 0.0));
        let l1 = t.add_node(NodeRole::Source, 10.0, "l1");
        coords.push(Coord::xy(20.0, 10.0));
        let r1 = t.add_node(NodeRole::Source, 10.0, "r1");
        coords.push(Coord::xy(20.0, -10.0));
        let l2 = t.add_node(NodeRole::Source, 10.0, "l2");
        coords.push(Coord::xy(-20.0, 10.0));
        let r2 = t.add_node(NodeRole::Source, 10.0, "r2");
        coords.push(Coord::xy(-20.0, -10.0));
        for i in 0..6 {
            t.add_node(NodeRole::Worker, 120.0, format!("w{i}"));
            let x = if i % 2 == 0 { 12.0 } else { -12.0 };
            coords.push(Coord::xy(x, (i as f64 - 2.5) * 2.0));
        }
        let rtt = DenseRtt::from_fn(coords.len(), |i, j| coords[i].dist(&coords[j]).max(0.1));
        let space = CostSpace::new(coords);
        let mut nova = Nova::with_cost_space(t, space, NovaConfig::default());
        let query = JoinQuery::by_key(
            vec![
                StreamSpec::keyed(l1, 30.0, 1),
                StreamSpec::keyed(l2, 30.0, 2),
            ],
            vec![
                StreamSpec::keyed(r1, 30.0, 1),
                StreamSpec::keyed(r2, 30.0, 2),
            ],
            sink,
        );
        nova.optimize(query);
        World { nova, rtt }
    }

    #[test]
    fn initial_world_places_two_pairs() {
        let w = world();
        let pairs: std::collections::HashSet<_> =
            w.nova.placement().replicas.iter().map(|r| r.pair).collect();
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn add_worker_is_nondisruptive() {
        let mut w = world();
        let before = w.nova.placement().clone();
        // The provider must cover the new node's measurements.
        let grown = grow_rtt(&w.rtt, Coord::xy(5.0, 0.0));
        let id = w.nova.add_worker(&grown, 50.0, "w-new");
        assert_eq!(w.nova.topology().node(id).role, NodeRole::Worker);
        assert_eq!(w.nova.placement().replicas, before.replicas);
        assert!(w.nova.cost_space().coord(id).is_some());
    }

    #[test]
    fn add_source_creates_and_places_new_pairs() {
        let mut w = world();
        let n_before = w.nova.placement().replicas.len();
        let rtt_grown = grow_rtt(&w.rtt, Coord::xy(22.0, 12.0));
        let out = w
            .nova
            .add_source(&rtt_grown, Side::Left, 20.0, 1, 10.0, "l3")
            .expect("add source");
        assert_eq!(
            out.replaced_pairs.len(),
            1,
            "one matching right stream with key 1"
        );
        assert!(w.nova.placement().replicas.len() > n_before);
        // The new pair's replicas ingest the new source's rate.
        let new_pair = out.replaced_pairs[0];
        let total: f64 = w
            .nova
            .placement()
            .replicas_of(new_pair)
            .map(|r| r.left_rate)
            .sum();
        assert!((total - 20.0).abs() < 1e-9);
    }

    #[test]
    fn remove_join_host_replaces_only_affected_pairs() {
        let mut w = world();
        let hosts: Vec<NodeId> = w.nova.placement().nodes_used();
        let victim = hosts[0];
        let victim_pairs: std::collections::HashSet<_> = w
            .nova
            .placement()
            .replicas
            .iter()
            .filter(|r| r.node == victim)
            .map(|r| r.pair)
            .collect();
        let out = w.nova.remove_node(victim).expect("remove");
        let replaced: std::collections::HashSet<_> = out.replaced_pairs.iter().copied().collect();
        assert_eq!(replaced, victim_pairs);
        // Nothing remains on the removed node.
        assert!(w.nova.placement().replicas.iter().all(|r| r.node != victim));
        // All pairs still placed.
        let pairs: std::collections::HashSet<_> =
            w.nova.placement().replicas.iter().map(|r| r.pair).collect();
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn remove_source_deactivates_its_pairs() {
        let mut w = world();
        let l1 = w.nova.topology().by_label("l1").unwrap();
        let out = w.nova.remove_node(l1).expect("remove source");
        assert_eq!(out.replaced_pairs.len(), 1);
        let pairs: std::collections::HashSet<_> =
            w.nova.placement().replicas.iter().map(|r| r.pair).collect();
        assert_eq!(pairs.len(), 1, "only the region-2 pair survives");
    }

    #[test]
    fn rate_change_replaces_affected_pair_with_new_rate() {
        let mut w = world();
        let out = w
            .nova
            .change_rate(Side::Left, 0, 60.0)
            .expect("rate change");
        assert_eq!(out.replaced_pairs.len(), 1);
        let pid = out.replaced_pairs[0];
        let left_total: f64 = w
            .nova
            .placement()
            .replicas_of(pid)
            .map(|r| r.left_rate)
            .sum();
        assert!(
            left_total >= 60.0 - 1e-9,
            "left rate re-placed: {left_total}"
        );
    }

    #[test]
    fn capacity_change_moves_load_off_shrunk_node() {
        let mut w = world();
        let hosts = w.nova.placement().nodes_used();
        let victim = hosts[0];
        let out = w
            .nova
            .change_capacity(victim, 1.0)
            .expect("capacity change");
        assert!(!out.replaced_pairs.is_empty());
        // The shrunk node cannot host the old load any more (C_r per pair
        // is 60 > 1); replicas must have moved.
        let load: f64 = w
            .nova
            .placement()
            .replicas
            .iter()
            .filter(|r| r.node == victim)
            .map(|r| r.required_capacity())
            .sum();
        assert!(load <= 1.0 + 1e-9, "residual load {load}");
    }

    #[test]
    fn coordinate_update_keeps_placement_consistent() {
        let mut w = world();
        let hosts = w.nova.placement().nodes_used();
        let victim = hosts[0];
        let out = w
            .nova
            .update_coordinates(&w.rtt, victim)
            .expect("coord update");
        assert!(!out.replaced_pairs.is_empty());
        let pairs: std::collections::HashSet<_> =
            w.nova.placement().replicas.iter().map(|r| r.pair).collect();
        assert_eq!(pairs.len(), 2, "all pairs still placed after drift");
    }

    #[test]
    fn apply_step_dispatches_to_the_imperative_api() {
        // Two worlds, same seed: the data-driven step sequence must
        // leave the optimizer in the same externally observable state
        // as the imperative calls.
        let mut a = world();
        let mut b = world();
        let grown = grow_rtt(&a.rtt, Coord::xy(5.0, 0.0));

        let wa = a.nova.add_worker(&grown, 50.0, "w-new");
        let out = b
            .nova
            .apply_step(
                &grown,
                &ReoptStep::AddWorker {
                    capacity: 50.0,
                    label: "w-new".into(),
                },
            )
            .expect("add worker step");
        assert_eq!(out.new_node, Some(wa));

        let ra = a.nova.change_rate(Side::Left, 0, 60.0).expect("rate");
        let rb = b
            .nova
            .apply_step(
                &grown,
                &ReoptStep::ChangeRate {
                    side: Side::Left,
                    stream: 0,
                    new_rate: 60.0,
                },
            )
            .expect("rate step");
        assert_eq!(ra.replaced_pairs, rb.replaced_pairs);
        assert_eq!(a.nova.placement().replicas, b.nova.placement().replicas);

        let victim = a.nova.placement().nodes_used()[0];
        let na = a.nova.remove_node(victim).expect("remove");
        let nb = b
            .nova
            .apply_step(&grown, &ReoptStep::RemoveNode { node: victim })
            .expect("remove step");
        assert_eq!(na.replaced_pairs, nb.replaced_pairs);
        assert_eq!(a.nova.placement().replicas, b.nova.placement().replicas);

        // Errors propagate unchanged.
        assert_eq!(
            b.nova
                .apply_step(
                    &grown,
                    &ReoptStep::ChangeRate {
                        side: Side::Right,
                        stream: 99,
                        new_rate: 1.0
                    }
                )
                .unwrap_err(),
            ReoptError::UnknownStream(Side::Right, 99)
        );
    }

    #[test]
    fn reopt_without_query_errors() {
        let mut t = Topology::new();
        t.add_node(NodeRole::Sink, 1.0, "sink");
        let space = CostSpace::new(vec![Coord::xy(0.0, 0.0)]);
        let mut nova = Nova::with_cost_space(t, space, NovaConfig::default());
        let rtt = DenseRtt::zeros(1);
        assert_eq!(
            nova.add_source(&rtt, Side::Left, 1.0, 1, 1.0, "x")
                .unwrap_err(),
            ReoptError::NoActiveQuery
        );
        assert_eq!(
            nova.change_rate(Side::Left, 0, 1.0).unwrap_err(),
            ReoptError::NoActiveQuery
        );
    }

    /// Extend a DenseRtt with one extra node at the given ground-truth
    /// position (distances to all existing nodes = coordinate distance).
    fn grow_rtt(base: &DenseRtt, new_pos: Coord) -> DenseRtt {
        // Reconstruct old positions is impossible from the matrix alone,
        // so approximate: new node's RTT to node i = distance from
        // new_pos to that node's position in the *test* world layout.
        // The world() layout is deterministic; rebuild it here.
        let coords = vec![
            Coord::xy(0.0, 0.0),
            Coord::xy(20.0, 10.0),
            Coord::xy(20.0, -10.0),
            Coord::xy(-20.0, 10.0),
            Coord::xy(-20.0, -10.0),
            Coord::xy(12.0, -5.0),
            Coord::xy(-12.0, -3.0),
            Coord::xy(12.0, -1.0),
            Coord::xy(-12.0, 1.0),
            Coord::xy(12.0, 3.0),
            Coord::xy(-12.0, 5.0),
        ];
        let n = base.len() + 1;
        DenseRtt::from_fn(n, |i, j| {
            if i < base.len() && j < base.len() {
                base.get(i, j)
            } else {
                let pos = |k: usize| if k < coords.len() { coords[k] } else { new_pos };
                pos(i).dist(&pos(j)).max(0.1)
            }
        })
    }
}
