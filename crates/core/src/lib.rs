//! # nova-core — the Nova join placement & parallelization optimizer
//!
//! From-scratch reproduction of *Nova: Scalable Streaming Join Placement
//! and Parallelization in Resource-Constrained Geo-Distributed
//! Environments* (EDBT 2026). Nova solves the Operator Placement and
//! Parallelization (OPP) problem — jointly choosing placement,
//! replication degree and stream partitioning for two-way streaming
//! joins — by relaxing the NP-hard discrete problem into convex geometry:
//!
//! 1. **Phase I** embeds the topology into a Euclidean cost space whose
//!    distances approximate latencies (Vivaldi / MDS, crate
//!    [`nova_netcoord`]).
//! 2. **Phase II** resolves the query into independent join pairs (one
//!    per join-matrix entry) and places each at the *geometric median*
//!    of its two sources and the sink — a convex problem with a unique
//!    optimum ([`virtual_placement`]).
//! 3. **Phase III** maps virtual positions to physical nodes:
//!    bandwidth-aware partitioning with the σ scale factor
//!    ([`partitioning`]), demand-adaptive k-NN candidate selection
//!    ([`candidates`]) and sequential capacity-checked assignment
//!    ([`placement`]).
//!
//! Re-optimization ([`reopt`]) adapts to node churn and workload shifts
//! by re-running Phase III for affected pairs only. The six baselines of
//! the paper's evaluation live in [`baselines`], and [`eval`] computes
//! the latency/overload/traffic metrics all experiments report.
//!
//! ## Quick start
//!
//! ```
//! use nova_core::{JoinQuery, Nova, NovaConfig, StreamSpec};
//! use nova_topology::running_example;
//!
//! let ex = running_example();
//! // Streams: pressure (left) and humidity (right), keyed by region.
//! let query = JoinQuery::by_key(
//!     ex.pressure
//!         .iter()
//!         .map(|&id| StreamSpec::keyed(id, 25.0, ex.topology.node(id).region.unwrap()))
//!         .collect(),
//!     ex.humidity
//!         .iter()
//!         .map(|&id| StreamSpec::keyed(id, 25.0, ex.topology.node(id).region.unwrap()))
//!         .collect(),
//!     ex.sink,
//! );
//! let mut nova = Nova::from_provider(
//!     ex.topology.clone(),
//!     ex.rtt.dense(),
//!     NovaConfig { c_min: 15.0, ..NovaConfig::default() },
//! );
//! let placement = nova.optimize(query);
//! assert!(!placement.replicas.is_empty());
//! ```

#![forbid(unsafe_code)]

pub mod baselines;
pub mod candidates;
pub mod eval;
pub mod joinmatrix;
pub mod optimizer;
pub mod partitioning;
pub mod placement;
pub mod plan;
pub mod reopt;
pub mod types;
pub mod virtual_placement;

pub use candidates::CandidateIndex;
pub use eval::{evaluate, EvalOptions, PlacementEval};
pub use joinmatrix::JoinMatrix;
pub use optimizer::{Nova, NovaConfig};
pub use partitioning::{p_max, partition_rates, sigma_for_bandwidth, PartitionedJoin};
pub use placement::{Availability, OverflowPolicy, PhaseThreeConfig, PlacedReplica, Placement};
pub use plan::{JoinQuery, ResolvedPlan};
pub use reopt::{ReoptError, ReoptOutcome, ReoptStep};
pub use types::{JoinPair, PairId, Side, StreamSpec};
pub use virtual_placement::{compute_optima, virtual_position};
