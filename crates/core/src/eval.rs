//! Placement evaluation: latency distributions, overload and traffic.
//!
//! Computes the metrics of the paper's simulation study from a
//! [`Placement`]:
//!
//! * per-stream end-to-end path latencies (source → join node → sink,
//!   following each replica's recorded multi-hop paths) — the basis of
//!   the Fig. 7/8/9 latency distributions,
//! * node loads including relay forwarding, and the *overloaded-node
//!   percentage* over the nodes actually participating in the placement
//!   (Fig. 6; the sink-based baseline overloads "100 % of its workers"
//!   because its single participating node exceeds its capacity),
//! * total network traffic in tuple-hops (the bandwidth side of the σ
//!   trade-off).
//!
//! Latencies are computed against a caller-supplied distance oracle so
//! the same placement can be measured under *estimated* (cost-space) and
//! *real* (measured RTT) latencies — the comparison behind Fig. 8.

use std::collections::HashMap;

use nova_topology::{NodeId, Topology};

use crate::placement::Placement;

/// Evaluation knobs.
#[derive(Debug, Clone, Copy)]
pub struct EvalOptions {
    /// Count forwarding load on relay nodes of multi-hop paths against
    /// their capacity (the WSN tree overlays do in-network forwarding).
    pub count_forwarding: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            count_forwarding: true,
        }
    }
}

/// Evaluation result for one placement.
#[derive(Debug, Clone)]
pub struct PlacementEval {
    /// End-to-end latency of every stream path (two per placed replica:
    /// left input and right input, each plus the output leg).
    pub path_latencies: Vec<f64>,
    /// Load per participating node (tuples/s), including forwarding if
    /// enabled.
    pub node_loads: HashMap<NodeId, f64>,
    /// Participating nodes whose load exceeds their capacity.
    pub overloaded_nodes: usize,
    /// Total participating nodes (hosts + relays).
    pub used_nodes: usize,
    /// Total network traffic in tuple-hops per second.
    pub network_traffic: f64,
}

impl PlacementEval {
    /// Mean path latency.
    pub fn mean_latency(&self) -> f64 {
        if self.path_latencies.is_empty() {
            return 0.0;
        }
        self.path_latencies.iter().sum::<f64>() / self.path_latencies.len() as f64
    }

    /// Latency percentile with `q` in [0, 1] (e.g. 0.9 = 90P).
    pub fn latency_percentile(&self, q: f64) -> f64 {
        if self.path_latencies.is_empty() {
            return 0.0;
        }
        let mut v = self.path_latencies.clone();
        v.sort_unstable_by(f64::total_cmp);
        let idx = ((v.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        v[idx]
    }

    /// Maximum path latency.
    pub fn max_latency(&self) -> f64 {
        self.path_latencies.iter().copied().fold(0.0, f64::max)
    }

    /// Percentage (0–100) of participating nodes that are overloaded.
    pub fn overload_percent(&self) -> f64 {
        if self.used_nodes == 0 {
            return 0.0;
        }
        100.0 * self.overloaded_nodes as f64 / self.used_nodes as f64
    }
}

/// Evaluate a placement under the given distance oracle.
///
/// `dist(a, b)` must return the latency of the direct hop `a → b` in
/// milliseconds; multi-hop paths recorded in the placement are summed
/// hop by hop.
pub fn evaluate(
    placement: &Placement,
    topology: &Topology,
    mut dist: impl FnMut(NodeId, NodeId) -> f64,
    opts: EvalOptions,
) -> PlacementEval {
    let mut path_latencies = Vec::with_capacity(placement.replicas.len() * 2);
    let mut node_loads: HashMap<NodeId, f64> = HashMap::new();
    let mut network_traffic = 0.0;

    let path_cost = |path: &[NodeId], dist: &mut dyn FnMut(NodeId, NodeId) -> f64| -> f64 {
        path.windows(2).map(|w| dist(w[0], w[1])).sum()
    };

    for rep in &placement.replicas {
        let left = path_cost(&rep.left_path, &mut dist);
        let right = path_cost(&rep.right_path, &mut dist);
        let out = path_cost(&rep.out_path, &mut dist);
        path_latencies.push(left + out);
        path_latencies.push(right + out);

        // Join processing load on the hosting node.
        *node_loads.entry(rep.node).or_default() += rep.required_capacity();

        // Forwarding load on intermediate relay nodes (first and last
        // hops of each path are endpoints, not relays).
        if opts.count_forwarding {
            for (path, rate) in [
                (&rep.left_path, rep.left_rate),
                (&rep.right_path, rep.right_rate),
                (&rep.out_path, rep.output_rate),
            ] {
                if path.len() > 2 {
                    for relay in &path[1..path.len() - 1] {
                        *node_loads.entry(*relay).or_default() += rate;
                    }
                }
            }
        }

        // Traffic: rate × hop count for every leg.
        network_traffic += rep.left_rate * (rep.left_path.len().saturating_sub(1)) as f64;
        network_traffic += rep.right_rate * (rep.right_path.len().saturating_sub(1)) as f64;
        network_traffic += rep.output_rate * (rep.out_path.len().saturating_sub(1)) as f64;
    }

    let overloaded_nodes = node_loads
        .iter()
        .filter(|(id, load)| **load > topology.node(**id).capacity + 1e-9)
        .count();
    let used_nodes = node_loads.len();

    PlacementEval {
        path_latencies,
        node_loads,
        overloaded_nodes,
        used_nodes,
        network_traffic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::PlacedReplica;
    use crate::types::PairId;
    use nova_topology::NodeRole;

    /// n0=src, n1=worker, n2=relay, n3=sink.
    fn topo() -> Topology {
        let mut t = Topology::new();
        t.add_node(NodeRole::Source, 10.0, "src");
        t.add_node(NodeRole::Worker, 100.0, "w");
        t.add_node(NodeRole::Worker, 5.0, "relay");
        t.add_node(NodeRole::Sink, 50.0, "sink");
        t
    }

    fn unit_dist(_: NodeId, _: NodeId) -> f64 {
        10.0
    }

    fn replica(
        node: NodeId,
        left: Vec<NodeId>,
        right: Vec<NodeId>,
        out: Vec<NodeId>,
    ) -> PlacedReplica {
        PlacedReplica {
            pair: PairId(0),
            node,
            left_rate: 20.0,
            right_rate: 20.0,
            left_partitions: vec![0],
            right_partitions: vec![0],
            merged_replicas: 1,
            left_path: left,
            right_path: right,
            out_path: out,
            output_rate: 40.0,
            overflowed: false,
        }
    }

    #[test]
    fn direct_paths_sum_two_hops() {
        let t = topo();
        let mut p = Placement::new("x");
        p.replicas.push(replica(
            NodeId(1),
            vec![NodeId(0), NodeId(1)],
            vec![NodeId(0), NodeId(1)],
            vec![NodeId(1), NodeId(3)],
        ));
        let e = evaluate(&p, &t, unit_dist, EvalOptions::default());
        // Each stream path: 10 (src→w) + 10 (w→sink) = 20.
        assert_eq!(e.path_latencies, vec![20.0, 20.0]);
        assert_eq!(e.mean_latency(), 20.0);
        assert_eq!(e.used_nodes, 1);
        assert_eq!(e.overloaded_nodes, 0);
        // Traffic: 20×1 + 20×1 + 40×1 = 80 tuple-hops.
        assert_eq!(e.network_traffic, 80.0);
    }

    #[test]
    fn relay_forwarding_counts_toward_overload() {
        let t = topo();
        let mut p = Placement::new("x");
        // Left input routed through the tiny relay node (capacity 5).
        p.replicas.push(replica(
            NodeId(1),
            vec![NodeId(0), NodeId(2), NodeId(1)],
            vec![NodeId(0), NodeId(1)],
            vec![NodeId(1), NodeId(3)],
        ));
        let e = evaluate(&p, &t, unit_dist, EvalOptions::default());
        // Relay carries 20 > capacity 5 ⇒ overloaded; worker carries 40
        // ≤ 100 ⇒ fine.
        assert_eq!(e.used_nodes, 2);
        assert_eq!(e.overloaded_nodes, 1);
        assert_eq!(e.overload_percent(), 50.0);
        // Left path latency has 3 hops... 2 link hops = 20, plus out 10.
        assert_eq!(e.max_latency(), 30.0);
    }

    #[test]
    fn forwarding_can_be_disabled() {
        let t = topo();
        let mut p = Placement::new("x");
        p.replicas.push(replica(
            NodeId(1),
            vec![NodeId(0), NodeId(2), NodeId(1)],
            vec![NodeId(0), NodeId(1)],
            vec![NodeId(1), NodeId(3)],
        ));
        let e = evaluate(
            &p,
            &t,
            unit_dist,
            EvalOptions {
                count_forwarding: false,
            },
        );
        assert_eq!(e.used_nodes, 1);
        assert_eq!(e.overloaded_nodes, 0);
    }

    #[test]
    fn join_on_overloaded_host_detected() {
        let t = topo();
        let mut p = Placement::new("x");
        // Join placed on the 5-capacity relay node: load 40 > 5.
        p.replicas.push(replica(
            NodeId(2),
            vec![NodeId(0), NodeId(2)],
            vec![NodeId(0), NodeId(2)],
            vec![NodeId(2), NodeId(3)],
        ));
        let e = evaluate(&p, &t, unit_dist, EvalOptions::default());
        assert_eq!(e.overload_percent(), 100.0);
    }

    #[test]
    fn percentiles_of_mixed_paths() {
        let t = topo();
        let mut p = Placement::new("x");
        for (i, hops) in [1usize, 2, 3, 4].iter().enumerate() {
            let mut left = vec![NodeId(0)];
            for _ in 0..*hops {
                left.push(NodeId(1));
            }
            let mut r = replica(NodeId(1), left, vec![NodeId(0), NodeId(1)], vec![NodeId(1)]);
            r.pair = PairId(i as u32);
            p.replicas.push(r);
        }
        let e = evaluate(&p, &t, unit_dist, EvalOptions::default());
        assert_eq!(e.path_latencies.len(), 8);
        assert!(e.latency_percentile(1.0) >= e.latency_percentile(0.5));
        assert_eq!(e.latency_percentile(1.0), 40.0);
    }

    #[test]
    fn empty_placement_is_benign() {
        let t = topo();
        let p = Placement::new("empty");
        let e = evaluate(&p, &t, unit_dist, EvalOptions::default());
        assert_eq!(e.mean_latency(), 0.0);
        assert_eq!(e.overload_percent(), 0.0);
        assert_eq!(e.latency_percentile(0.9), 0.0);
    }

    #[test]
    fn colocated_paths_cost_nothing() {
        let t = topo();
        let mut p = Placement::new("x");
        // Join at the source itself; single-node paths have no hops.
        p.replicas.push(replica(
            NodeId(0),
            vec![NodeId(0)],
            vec![NodeId(0)],
            vec![NodeId(0), NodeId(3)],
        ));
        let e = evaluate(&p, &t, unit_dist, EvalOptions::default());
        assert_eq!(e.path_latencies, vec![10.0, 10.0]);
    }
}
