//! The synthetic OPP simulation workload (paper §4.1 "Workloads").
//!
//! Converts any node population (synthetic Gaussian-cluster topologies or
//! testbed stand-ins) into an experiment instance following the paper's
//! recipe:
//!
//! * 60 % of the nodes become sources, 40 % workers (mirroring the FIT
//!   IoT Lab hardware distribution); the sink is chosen at random,
//! * capacities come from a configurable distribution with the total
//!   held approximately constant (the Fig. 6 heterogeneity sweep),
//! * each source is assigned to one of the two logical streams and
//!   joined with exactly one source of the other stream, so the join
//!   matrix has exactly one entry per row,
//! * per-source data rates are uniform in [1, 200].

use nova_core::{JoinQuery, StreamSpec};
use nova_topology::{CapacityDistribution, NodeId, NodeRole, Topology};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Parameters of the synthetic OPP workload.
#[derive(Debug, Clone, Copy)]
pub struct OppParams {
    /// Fraction of nodes designated sources (paper: 0.6).
    pub source_frac: f64,
    /// Per-source data-rate range (paper: 1–200 tuples/s).
    pub rate_range: (f64, f64),
    /// Node capacity distribution (the Fig. 6 sweep varies this).
    pub capacity: CapacityDistribution,
    /// Mean capacity after normalization.
    pub capacity_mean: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for OppParams {
    fn default() -> Self {
        OppParams {
            source_frac: 0.6,
            rate_range: (1.0, 200.0),
            capacity: CapacityDistribution::Uniform {
                min: 1.0,
                max: 200.0,
            },
            // Mean node capacity after normalization. Rates average ~100
            // over 60 % sources, so a mean of 200 gives the topology ≈2×
            // aggregate headroom over raw demand — enough to absorb the
            // broadcast-duplication tax of partitioned placement, which
            // is the feasible regime the paper's Fig. 6 operates in
            // (Nova: 0 % overload).
            capacity_mean: 200.0,
            seed: 0x09,
        }
    }
}

/// A generated experiment instance.
#[derive(Debug, Clone)]
pub struct OppWorkload {
    /// The topology with roles and capacities assigned.
    pub topology: Topology,
    /// The two-way join query (one matrix entry per row).
    pub query: JoinQuery,
}

/// Assign roles, capacities, stream sides and rates over an existing node
/// population (positions/latency model untouched).
pub fn synthetic_opp(base: &Topology, params: &OppParams) -> OppWorkload {
    assert!(
        base.len() >= 4,
        "need at least 2 sources, a worker and a sink"
    );
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut topology = base.clone();
    let n = topology.len();

    // Capacities: normalized to keep total compute constant across
    // heterogeneity levels.
    let caps = params
        .capacity
        .sample_normalized(n, params.capacity_mean, &mut rng);
    for (i, cap) in caps.iter().enumerate() {
        topology.node_mut(NodeId(i as u32)).capacity = *cap;
    }

    // Random sink, then a 60/40 source/worker split of the rest.
    let sink = NodeId(rng.gen_range(0..n) as u32);
    let mut rest: Vec<NodeId> = (0..n as u32).map(NodeId).filter(|&id| id != sink).collect();
    rest.shuffle(&mut rng);
    let n_sources_raw = ((n - 1) as f64 * params.source_frac).round() as usize;
    // An even source count so every source has exactly one partner.
    let n_sources = (n_sources_raw - n_sources_raw % 2).max(2);
    for (i, &id) in rest.iter().enumerate() {
        topology.node_mut(id).role = if i < n_sources {
            NodeRole::Source
        } else {
            NodeRole::Worker
        };
    }
    topology.node_mut(sink).role = NodeRole::Sink;

    // Pair sources: first half left, second half right, key = pair index
    // ⇒ the join matrix has exactly one entry per row (paper §4.1).
    let half = n_sources / 2;
    let mut left = Vec::with_capacity(half);
    let mut right = Vec::with_capacity(half);
    for k in 0..half {
        let rate_l = rng.gen_range(params.rate_range.0..=params.rate_range.1);
        let rate_r = rng.gen_range(params.rate_range.0..=params.rate_range.1);
        let l = rest[k];
        let r = rest[half + k];
        topology.node_mut(l).region = Some(k as u32);
        topology.node_mut(r).region = Some(k as u32);
        left.push(StreamSpec::keyed(l, rate_l, k as u32));
        right.push(StreamSpec::keyed(r, rate_r, k as u32));
    }
    let query = JoinQuery::by_key(left, right, sink);
    OppWorkload { topology, query }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_topology::{SyntheticParams, SyntheticTopology};

    fn base(n: usize) -> Topology {
        SyntheticTopology::generate(&SyntheticParams {
            n,
            seed: 5,
            ..Default::default()
        })
        .topology
    }

    #[test]
    fn split_matches_paper_fractions() {
        let w = synthetic_opp(&base(500), &OppParams::default());
        let sources = w.topology.nodes_with_role(NodeRole::Source).len();
        let workers = w.topology.nodes_with_role(NodeRole::Worker).len();
        let sinks = w.topology.nodes_with_role(NodeRole::Sink).len();
        assert_eq!(sinks, 1);
        assert_eq!(sources + workers + 1, 500);
        let frac = sources as f64 / 499.0;
        assert!((frac - 0.6).abs() < 0.01, "source fraction {frac}");
    }

    #[test]
    fn matrix_has_one_entry_per_row() {
        let w = synthetic_opp(&base(200), &OppParams::default());
        let plan = w.query.resolve();
        assert_eq!(plan.len(), w.query.left.len());
        // Each left stream appears exactly once, each right stream too.
        let mut left_seen = vec![false; w.query.left.len()];
        let mut right_seen = vec![false; w.query.right.len()];
        for p in &plan.pairs {
            assert!(!left_seen[p.left as usize]);
            assert!(!right_seen[p.right as usize]);
            left_seen[p.left as usize] = true;
            right_seen[p.right as usize] = true;
        }
    }

    #[test]
    fn rates_respect_range() {
        let w = synthetic_opp(&base(300), &OppParams::default());
        for s in w.query.left.iter().chain(&w.query.right) {
            assert!((1.0..=200.0).contains(&s.rate), "rate {}", s.rate);
        }
    }

    #[test]
    fn sources_are_source_roles_and_sink_is_sink() {
        let w = synthetic_opp(&base(100), &OppParams::default());
        for s in w.query.left.iter().chain(&w.query.right) {
            assert_eq!(w.topology.node(s.node).role, NodeRole::Source);
        }
        assert_eq!(w.topology.node(w.query.sink).role, NodeRole::Sink);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = synthetic_opp(&base(150), &OppParams::default());
        let b = synthetic_opp(&base(150), &OppParams::default());
        assert_eq!(a.query.sink, b.query.sink);
        assert_eq!(a.query.left.len(), b.query.left.len());
        for (x, y) in a.query.left.iter().zip(&b.query.left) {
            assert_eq!(x.node, y.node);
            assert_eq!(x.rate, y.rate);
        }
        let c = synthetic_opp(
            &base(150),
            &OppParams {
                seed: 77,
                ..Default::default()
            },
        );
        assert!(
            a.query.sink != c.query.sink
                || a.query
                    .left
                    .iter()
                    .zip(&c.query.left)
                    .any(|(x, y)| x.node != y.node),
            "different seeds should differ"
        );
    }

    #[test]
    fn capacities_are_normalized() {
        let w = synthetic_opp(&base(400), &OppParams::default());
        let caps: Vec<f64> = w.topology.nodes().iter().map(|n| n.capacity).collect();
        let mean = caps.iter().sum::<f64>() / caps.len() as f64;
        assert!((mean - 200.0).abs() < 1e-9);
    }
}
