//! Smart-city scenario: joining traffic and weather streams.
//!
//! The paper's introduction motivates regional stream joins with a
//! smart-city example — "joining traffic and weather streams in a smart
//! city to dynamically adjust speed limits". This generator builds that
//! workload: per district, a *high-rate* traffic-sensor stream joins a
//! *low-rate* weather-station stream. The strong rate asymmetry is
//! exactly the case where Nova's joint partition weighting (Eq. 7)
//! outperforms independent partitioning, so this scenario doubles as the
//! ablation workload for that design choice.

use nova_core::{JoinQuery, StreamSpec};
use nova_topology::{EdgeFogCloud, EdgeFogCloudParams};

/// Parameters of the smart-city workload.
#[derive(Debug, Clone, Copy)]
pub struct SmartCityParams {
    /// Number of city districts (each district = one regional join).
    pub districts: usize,
    /// Traffic-sensor rate per district (tuples/s) — high.
    pub traffic_rate: f64,
    /// Weather-station rate per district (tuples/s) — low.
    pub weather_rate: f64,
    /// Fog workers available in the city.
    pub workers: usize,
    /// Seed for topology latencies.
    pub seed: u64,
}

impl Default for SmartCityParams {
    fn default() -> Self {
        SmartCityParams {
            districts: 6,
            traffic_rate: 200.0,
            weather_rate: 10.0,
            workers: 8,
            seed: 0x5C17,
        }
    }
}

/// A generated smart-city scenario.
#[derive(Debug, Clone)]
pub struct SmartCityScenario {
    /// City infrastructure: district sensors, fog workers, control room
    /// (sink).
    pub cluster: EdgeFogCloud,
    /// Traffic (left) ⋈ weather (right) by district.
    pub query: JoinQuery,
}

/// Build the scenario.
pub fn smart_city_scenario(params: &SmartCityParams) -> SmartCityScenario {
    let cluster = EdgeFogCloud::generate(&EdgeFogCloudParams {
        regions: params.districts,
        sources_per_region: 2,
        workers: params.workers,
        // City fabric: lower latencies than the geo-distributed default.
        access_latency: (2.0, 10.0),
        fabric_latency: (3.0, 12.0),
        sink_latency: (5.0, 15.0),
        seed: params.seed,
        ..EdgeFogCloudParams::default()
    });
    let mut traffic = Vec::with_capacity(params.districts);
    let mut weather = Vec::with_capacity(params.districts);
    for (district, sources) in cluster.sources_by_region.iter().enumerate() {
        traffic.push(StreamSpec::keyed(
            sources[0],
            params.traffic_rate,
            district as u32,
        ));
        weather.push(StreamSpec::keyed(
            sources[1],
            params.weather_rate,
            district as u32,
        ));
    }
    let query = JoinQuery::by_key(traffic, weather, cluster.sink);
    SmartCityScenario { cluster, query }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_core::{p_max, PartitionedJoin};

    #[test]
    fn scenario_has_one_join_per_district() {
        let s = smart_city_scenario(&SmartCityParams::default());
        assert_eq!(s.query.resolve().len(), 6);
    }

    #[test]
    fn rates_are_asymmetric() {
        let s = smart_city_scenario(&SmartCityParams::default());
        for (t, w) in s.query.left.iter().zip(&s.query.right) {
            assert!(t.rate > 10.0 * w.rate);
        }
    }

    #[test]
    fn joint_weighting_leaves_weather_unpartitioned() {
        // The design-choice check from §3.4: with joint weighting, the
        // small stream stays whole while the big one splits.
        let p = SmartCityParams::default();
        let pm = p_max(p.traffic_rate, p.weather_rate, 0.4);
        let parts = PartitionedJoin::decompose(p.traffic_rate, p.weather_rate, 0.4);
        assert!(pm > p.weather_rate, "weather fits one partition");
        assert_eq!(parts.right.len(), 1);
        assert!(parts.left.len() >= 2, "traffic splits: {:?}", parts.left);
    }
}
