//! # nova-workloads — workload generators for the Nova experiments
//!
//! Three workload families drive the paper's evaluation, all reproduced
//! here as deterministic, seeded generators:
//!
//! * [`environmental`] — the DEBS-2021-inspired environmental-monitoring
//!   scenario (pressure ⋈ humidity by region at 1 kHz on a simulated
//!   Raspberry-Pi cluster) used by the end-to-end experiments (§4.7) and
//!   the running example,
//! * [`synthetic_opp`](mod@synthetic_opp) — the simulation workload of §4.1: 60 % sources /
//!   40 % workers over any topology, capacity-heterogeneity sweeps, and a
//!   join matrix with exactly one entry per row,
//! * [`smart_city`] — the introduction's traffic ⋈ weather scenario with
//!   strongly asymmetric rates, exercising the joint partition weighting.

#![forbid(unsafe_code)]

pub mod environmental;
pub mod smart_city;
pub mod synthetic_opp;

pub use environmental::{
    environmental_scenario, EnvironmentalParams, EnvironmentalScenario, DEBS_RATE,
};
pub use smart_city::{smart_city_scenario, SmartCityParams, SmartCityScenario};
pub use synthetic_opp::{synthetic_opp, OppParams, OppWorkload};
