//! The environmental-monitoring workload (paper §1, §4.1, §4.7).
//!
//! Models the DEBS 2021 Grand Challenge-inspired scenario: pressure and
//! humidity streams from Sensor.Community-style sensors in several
//! regions, continuously joined on (region id, tumbling window) to detect
//! regional climate anomalies. The paper's end-to-end deployment uses
//! four regions × (1 pressure + 1 humidity) sensor at 1 kHz each on a
//! 14-node Raspberry-Pi cluster (8 sources, 5 workers, 1 coordinator).

use nova_core::{JoinQuery, StreamSpec};
use nova_topology::{EdgeFogCloud, EdgeFogCloudParams};

/// Per-sensor emission rate of the paper's end-to-end workload
/// (1 kHz = 1000 tuples/s).
pub const DEBS_RATE: f64 = 1000.0;

/// Parameters of the environmental workload.
#[derive(Debug, Clone, Copy)]
pub struct EnvironmentalParams {
    /// Number of regions (paper: 4).
    pub regions: usize,
    /// Emission rate per sensor in tuples/s (paper: 1000).
    pub rate: f64,
    /// Join selectivity applied on top of the (region, window) condition.
    pub selectivity: f64,
    /// Seed for the testbed topology latencies.
    pub seed: u64,
}

impl Default for EnvironmentalParams {
    fn default() -> Self {
        EnvironmentalParams {
            regions: 4,
            rate: DEBS_RATE,
            selectivity: 1.0,
            seed: 0xDEB5,
        }
    }
}

/// The full end-to-end scenario: a Pi-cluster-like topology plus the
/// regional pressure ⋈ humidity query.
#[derive(Debug, Clone)]
pub struct EnvironmentalScenario {
    /// The simulated 14-node cluster (8 sources, 5 workers, sink) — or
    /// scaled variants for other region counts.
    pub cluster: EdgeFogCloud,
    /// The two-way join query: pressure (left) ⋈ humidity (right) per
    /// region.
    pub query: JoinQuery,
}

/// Build the paper's end-to-end scenario. Each region contributes one
/// pressure sensor (left stream) and one humidity sensor (right stream);
/// the join matrix pairs them per region (4 parallel two-way joins for
/// the default parameters).
pub fn environmental_scenario(params: &EnvironmentalParams) -> EnvironmentalScenario {
    let cluster = EdgeFogCloud::generate(&EdgeFogCloudParams {
        regions: params.regions,
        sources_per_region: 2,
        seed: params.seed,
        ..EdgeFogCloudParams::default()
    });
    let mut left = Vec::with_capacity(params.regions);
    let mut right = Vec::with_capacity(params.regions);
    for (region, sources) in cluster.sources_by_region.iter().enumerate() {
        // First source of the region: pressure; second: humidity.
        left.push(StreamSpec::keyed(sources[0], params.rate, region as u32));
        right.push(StreamSpec::keyed(sources[1], params.rate, region as u32));
    }
    let query = JoinQuery::by_key(left, right, cluster.sink).with_selectivity(params.selectivity);
    EnvironmentalScenario { cluster, query }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_topology::LatencyProvider;

    #[test]
    fn default_scenario_matches_paper_shape() {
        let s = environmental_scenario(&EnvironmentalParams::default());
        // 14 nodes: 8 sources + 5 workers + 1 sink.
        assert_eq!(s.cluster.topology.len(), 14);
        assert_eq!(s.query.left.len(), 4);
        assert_eq!(s.query.right.len(), 4);
        // Four parallel region joins.
        assert_eq!(s.query.resolve().len(), 4);
        // All sensors at 1 kHz.
        for spec in s.query.left.iter().chain(&s.query.right) {
            assert_eq!(spec.rate, DEBS_RATE);
        }
    }

    #[test]
    fn regions_join_only_within_themselves() {
        let s = environmental_scenario(&EnvironmentalParams::default());
        for pair in &s.query.resolve().pairs {
            let l = s.query.left_stream(pair);
            let r = s.query.right_stream(pair);
            assert_eq!(l.key, r.key, "cross-region pair {pair:?}");
        }
    }

    #[test]
    fn sources_reach_the_sink() {
        let s = environmental_scenario(&EnvironmentalParams::default());
        for spec in s.query.left.iter().chain(&s.query.right) {
            assert!(s.cluster.rtt.rtt(spec.node, s.cluster.sink).is_finite());
        }
    }

    #[test]
    fn scenario_scales_with_region_count() {
        let s = environmental_scenario(&EnvironmentalParams {
            regions: 8,
            ..Default::default()
        });
        assert_eq!(s.query.resolve().len(), 8);
        assert_eq!(s.cluster.topology.len(), 8 * 2 + 5 + 1);
    }
}
