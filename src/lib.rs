//! # nova — streaming join placement & parallelization for the edge
//!
//! Facade crate of the reproduction of *Nova: Scalable Streaming Join
//! Placement and Parallelization in Resource-Constrained Geo-Distributed
//! Environments* (EDBT 2026). Re-exports the workspace crates:
//!
//! * [`core`] ([`nova_core`]) — the optimizer: cost-space relaxation,
//!   geometric-median virtual placement, bandwidth-aware partitioning,
//!   physical assignment, re-optimization and the six baselines,
//! * [`topology`] ([`nova_topology`]) — topology model, generators,
//!   routing, latency providers and drift replay,
//! * [`netcoord`] ([`nova_netcoord`]) — Vivaldi and MDS network
//!   coordinate systems (Phase I),
//! * [`geom`] ([`nova_geom`]) — geometric median solvers and k-NN
//!   indexes,
//! * [`runtime`] ([`nova_runtime`]) — the discrete-event
//!   stream-processing testbed,
//! * [`exec`] ([`nova_exec`]) — the multi-threaded streaming-join
//!   executor: the same dataflows on real OS threads, bounded channels
//!   and windowed hash joins (see `examples/real_execution.rs`),
//! * [`workloads`] ([`nova_workloads`]) — DEBS-style, synthetic-OPP and
//!   smart-city workload generators.
//!
//! See `examples/quickstart.rs` for a five-minute tour and DESIGN.md for
//! the system inventory and experiment index.

pub use nova_core as core;
pub use nova_exec as exec;
pub use nova_geom as geom;
pub use nova_netcoord as netcoord;
pub use nova_runtime as runtime;
pub use nova_topology as topology;
pub use nova_workloads as workloads;

// The most common entry points, re-exported flat for convenience.
pub use nova_core::{evaluate, EvalOptions, JoinQuery, Nova, NovaConfig, Placement, StreamSpec};
pub use nova_exec::{
    backend_for, execute, launch, AsyncBackend, Backend, BackendKind, EpochStats, ExecConfig,
    ExecHandle, ExecResult, ReconfigError, ShardedBackend, ThreadedBackend,
};
pub use nova_runtime::{simulate_reconfigured, PlanSwitch};
pub use nova_topology::{running_example, NodeId, NodeRole, Topology};
