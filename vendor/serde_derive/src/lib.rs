//! No-op derive macros for the offline `serde` stand-in.
//!
//! The workspace derives `Serialize`/`Deserialize` on config and plan
//! types so they can be persisted by downstream tooling, but nothing in
//! the workspace itself drives a serializer through those derived impls
//! (the one place that (de)serializes — `nova_geom::Coord` — implements
//! the traits by hand). These derives therefore expand to nothing: the
//! annotation compiles, `#[serde(...)]` attributes are accepted, and no
//! impl is generated. Swapping in the real `serde`/`serde_derive`
//! restores full codegen without touching any annotated type.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` field/variant
/// attributes) and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` field/variant
/// attributes) and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
