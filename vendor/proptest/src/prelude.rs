//! Common imports, mirroring `proptest::prelude`.

pub use crate::{
    prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy, TestRunner,
};
