//! Offline stand-in for the subset of `proptest` the workspace uses.
//!
//! A real (if small) property-testing runner: the [`proptest!`] macro
//! generates `#[test]` functions that draw inputs from [`Strategy`]
//! values and run the body for `ProptestConfig::cases` cases
//! (`PROPTEST_CASES` overrides the default of 64). Failures report the
//! case number and the generated inputs. What's missing versus upstream
//! is shrinking and persistence — a failing case is reported as-is, not
//! minimized. The seed is derived from the test name, so runs are
//! deterministic and failures reproducible.
//!
//! Supported strategy surface: numeric ranges (`lo..hi`, `lo..=hi`),
//! tuples of strategies (arity 2–4), [`Strategy::prop_map`], and
//! [`collection::vec`]. That is exactly what the workspace's property
//! tests use; swap the path dependency for the real `proptest = "1"` to
//! get the full DSL and shrinking.

use rand::prelude::*;

pub mod collection;
pub mod prelude;

/// A generator of test-case inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T> Strategy for core::ops::Range<T>
where
    T: Clone,
    core::ops::Range<T>: rand::SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for core::ops::RangeInclusive<T>
where
    T: Clone,
    core::ops::RangeInclusive<T>: rand::SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Runner configuration (`proptest::test_runner::Config` subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .unwrap_or(64);
        ProptestConfig {
            cases: cases.max(1),
        }
    }
}

impl ProptestConfig {
    /// Config running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases: cases.max(1),
        }
    }
}

/// Drives the cases of one property test.
pub struct TestRunner {
    rng: StdRng,
    cases: u32,
}

impl TestRunner {
    /// New runner seeded deterministically from the test name.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        // FNV-1a over the name: stable across runs and platforms.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            rng: StdRng::seed_from_u64(h),
            cases: config.cases,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// Draw one input from a strategy.
    pub fn generate<S: Strategy>(&mut self, strategy: &S) -> S::Value {
        strategy.generate(&mut self.rng)
    }
}

/// Define property tests (`proptest!` subset: `fn name(arg in strategy,
/// ...) { body }` items, optionally preceded by
/// `#![proptest_config(...)]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::Strategy as _;
                let config: $crate::ProptestConfig = $config;
                let mut runner = $crate::TestRunner::new(config, stringify!($name));
                for case in 0..runner.cases() {
                    $(let $arg = runner.generate(&($strategy));)+
                    let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        { $body };
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!(
                            "proptest {} failed at case {case}: {message}\n  inputs: {}",
                            stringify!($name),
                            format!(
                                concat!($(stringify!($arg), " = {:?}; "),+),
                                $(&$arg),+
                            ),
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(
                format!("assertion failed: {l:?} != {r:?}"),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(
                format!("{}: {l:?} != {r:?}", format!($($fmt)+)),
            );
        }
    }};
}
