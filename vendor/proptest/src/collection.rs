//! Collection strategies (`proptest::collection` subset).

use rand::prelude::*;

use crate::Strategy;

/// Strategy for `Vec`s with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// Output of [`vec`](fn@vec).
pub struct VecStrategy<S> {
    element: S,
    size: core::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
