//! Offline stand-in for the subset of `serde` the workspace uses.
//!
//! Provides the `Serialize`/`Deserialize` traits (with a tiny generic
//! [`value::Value`] data model so hand-written impls like
//! `nova_geom::Coord`'s are exercisable), the `Serializer`/`Deserializer`
//! trait pair those impls are written against, and re-exports the no-op
//! derive macros from `serde_derive`. Replace the two path dependencies
//! with the real `serde = { version = "1", features = ["derive"] }` to
//! restore full serialization support; no annotated type needs changing.

pub use serde_derive::{Deserialize, Serialize};

pub mod de;
pub mod ser;
pub mod value;

use std::marker::PhantomData;

use value::Value;

/// A type serializable into any [`Serializer`].
pub trait Serialize {
    /// Serialize `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A sink for serialized values. Minimal data model: primitives and
/// sequences, which is all the workspace's hand-written impls emit.
pub trait Serializer: Sized {
    /// Value returned on success.
    type Ok;
    /// Error type.
    type Error: ser::Error;

    /// Serialize a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serialize a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serialize an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serialize a sequence from an iterator of serializable items.
    fn collect_seq<I>(self, iter: I) -> Result<Self::Ok, Self::Error>
    where
        I: IntoIterator,
        I::Item: Serialize;
}

/// A type deserializable from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserialize a value.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A source of deserialized values, surfaced through the [`Value`] model.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: de::Error;

    /// Pull the next value out of the input.
    fn deserialize_value(self) -> Result<Value, Self::Error>;
}

macro_rules! impl_serialize_primitive {
    ($($t:ty => $method:ident as $cast:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self as $cast)
            }
        }
    )*};
}

impl_serialize_primitive!(
    bool => serialize_bool as bool,
    i8 => serialize_i64 as i64, i16 => serialize_i64 as i64,
    i32 => serialize_i64 as i64, i64 => serialize_i64 as i64,
    u8 => serialize_u64 as u64, u16 => serialize_u64 as u64,
    u32 => serialize_u64 as u64, u64 => serialize_u64 as u64,
    usize => serialize_u64 as u64,
    f32 => serialize_f64 as f64, f64 => serialize_f64 as f64
);

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(self.iter())
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Float(v) => Ok(v),
            Value::Int(v) => Ok(v as f64),
            Value::UInt(v) => Ok(v as f64),
            other => Err(de::Error::custom(format!("expected float, got {other:?}"))),
        }
    }
}

impl<'de> Deserialize<'de> for u64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::UInt(v) => Ok(v),
            Value::Int(v) if v >= 0 => Ok(v as u64),
            other => Err(de::Error::custom(format!(
                "expected unsigned int, got {other:?}"
            ))),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Seq(items) => items
                .into_iter()
                .map(|v| T::deserialize(ValueDeserializer::<D::Error>::new(v)))
                .collect(),
            other => Err(de::Error::custom(format!(
                "expected sequence, got {other:?}"
            ))),
        }
    }
}

/// Adapter turning an owned [`Value`] back into a [`Deserializer`], used
/// to deserialize the elements of compound values.
pub struct ValueDeserializer<E> {
    value: Value,
    marker: PhantomData<fn() -> E>,
}

impl<E> ValueDeserializer<E> {
    /// Wrap a value.
    pub fn new(value: Value) -> Self {
        ValueDeserializer {
            value,
            marker: PhantomData,
        }
    }
}

impl<'de, E: de::Error> Deserializer<'de> for ValueDeserializer<E> {
    type Error = E;

    fn deserialize_value(self) -> Result<Value, E> {
        Ok(self.value)
    }
}
