//! Serialization error plumbing (`serde::ser` subset).

use std::fmt::Display;

/// Errors produced by a [`crate::Serializer`].
pub trait Error: Sized + std::error::Error {
    /// Build an error from any printable message.
    fn custom<T: Display>(msg: T) -> Self;
}
