//! The stand-in's generic data model.

/// A self-describing value: what a [`crate::Deserializer`] yields and the
/// common currency between hand-written impls.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence of values.
    Seq(Vec<Value>),
}
