//! Deserialization error plumbing (`serde::de` subset).

use std::fmt::Display;

/// Errors produced by a [`crate::Deserializer`].
pub trait Error: Sized + std::error::Error {
    /// Build an error from any printable message.
    fn custom<T: Display>(msg: T) -> Self;
}
