//! Offline stand-in for the subset of `criterion` the workspace uses.
//!
//! Unlike the serde shim this one is *functional*: benchmarks really run
//! and really get timed — warm-up iteration, then samples until a time
//! budget (default 2 s per benchmark, `NOVA_BENCH_BUDGET_MS` overrides)
//! or the group's `sample_size` is exhausted, then a one-line report of
//! min/mean iteration time. No statistics beyond that, no plots, no
//! baseline comparison — swap in the real `criterion = "0.5"` for those.
//! The macro/API surface (`criterion_group!`, `criterion_main!`,
//! `Criterion::benchmark_group`, `Bencher::iter`, `iter_batched`,
//! `BenchmarkId`, `black_box`) matches upstream, so bench sources compile
//! unchanged against either implementation.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Hint for how `iter_batched` amortizes setup; the stand-in runs every
/// batch per-iteration regardless, so this only mirrors the upstream API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Entry point handed to every benchmark function.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let budget_ms = std::env::var("NOVA_BENCH_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(2000);
        Criterion {
            budget: Duration::from_millis(budget_ms),
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let budget = self.budget;
        run_one(name, 100, budget, f);
        self
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Cap the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<N: Display, F>(&mut self, id: N, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.criterion.budget, f);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, N: Display, F>(
        &mut self,
        id: N,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.criterion.budget, |b| {
            f(b, input)
        });
        self
    }

    /// Finish the group (report-flush in upstream; a no-op here).
    pub fn finish(&mut self) {}
}

/// Timer handle: benchmarks call [`Bencher::iter`] exactly once.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_cap: usize,
    budget: Duration,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up (untimed).
        black_box(routine());
        let started = Instant::now();
        while self.samples.len() < self.sample_cap && started.elapsed() < self.budget {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }

    /// Time `routine` on fresh input from `setup` each iteration; only
    /// the routine is timed.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        black_box(routine(setup()));
        let started = Instant::now();
        while self.samples.len() < self.sample_cap && started.elapsed() < self.budget {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_cap: usize, budget: Duration, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_cap,
        budget,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("bench {label:<48} (no samples)");
        return;
    }
    let n = b.samples.len() as u32;
    let total: Duration = b.samples.iter().sum();
    let mean = total / n;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    println!("bench {label:<48} mean {mean:>12.3?}  min {min:>12.3?}  ({n} samples)");
}

/// Bundle benchmark functions into a runnable group, like upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups, like upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
