//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard seeded generator: SplitMix64.
///
/// Upstream `rand`'s `StdRng` is ChaCha-based; this stand-in trades
/// cryptographic strength (irrelevant here) for zero dependencies.
/// SplitMix64 passes BigCrush and, crucially, produces well-decorrelated
/// streams for adjacent seeds — the workspace seeds runs with small
/// consecutive integers.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}
