//! Offline stand-in for the subset of `rand` 0.8 the workspace uses.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the exact API surface the nova crates rely on — seeded
//! [`rngs::StdRng`], the [`Rng`] extension trait with `gen_range`, and
//! [`seq::SliceRandom`] — backed by the SplitMix64 generator. All draws
//! are deterministic given the seed, which is the only property the
//! workspace's tests and experiments require. Swap this path dependency
//! for the real `rand = "0.8"` to restore the upstream implementation;
//! the numeric streams will differ, the semantics will not.

pub mod prelude;
pub mod rngs;
pub mod seq;

pub use seq::SliceRandom;

/// Core randomness source: a stream of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniform random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed. Distinct seeds yield
    /// decorrelated streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from a range (`a..b` or `a..=b`). Panics on an empty
    /// range, like upstream `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Uniform draw of a full value (`f64` in `[0, 1)`, integers over
    /// their whole domain).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Types drawable uniformly over their natural domain (for [`Rng::gen`]).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `f64` in `[0, 1)` from 53 random bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `f64` in `[0, 1]` (inclusive upper bound).
#[inline]
fn unit_f64_inclusive(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = unit_f64(rng.next_u64());
        let v = self.start + u * (self.end - self.start);
        // Floating-point rounding may land exactly on `end`; clamp back
        // into the half-open interval like upstream rand does.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = unit_f64_inclusive(rng.next_u64());
        (lo + u * (hi - lo)).clamp(lo, hi)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = unit_f64(rng.next_u64()) as f32;
        let v = self.start + u * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(2.0..5.0);
            assert!((2.0..5.0).contains(&v));
            let w: f64 = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn int_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _: f64 = rng.gen_range(1.0..1.0);
    }

    #[test]
    fn uniformity_is_roughly_flat() {
        // 10 buckets × 10 000 draws: every bucket within ±15 % of mean.
        let mut rng = StdRng::seed_from_u64(6);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            let v: f64 = rng.gen();
            buckets[(v * 10.0) as usize] += 1;
        }
        for b in buckets {
            assert!((8_500..11_500).contains(&b), "bucket count {b}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
